package sim

import (
	"errors"
	"math/rand"
)

type reqKind uint8

const (
	reqRead reqKind = iota + 1
	reqWrite
	reqSwap
	reqCAS
	reqFetchAdd
	reqWaitWhile
	reqLocalWork
	reqDone
)

type request struct {
	kind   reqKind
	addr   Addr
	a, b   uint64
	cycles int64
}

var errAborted = errors.New("sim: run aborted")

// Proc is the handle a simulated program uses to execute on one processor.
// All methods block the calling goroutine until the engine completes the
// operation at the simulated cost; programs are otherwise ordinary Go code.
type Proc struct {
	id   int32
	m    *Machine
	req  chan request
	resp chan uint64
	rng  *rand.Rand
	now  int64

	// dead is closed when the fault plan crash-stops this processor;
	// the next engine interaction then aborts the goroutine.
	dead chan struct{}

	// watchdog bookkeeping: the last issued request (for diagnostic
	// snapshots) and tracked-operation completions (OpDone).
	lastKind reqKind
	lastAddr Addr
	ops      int64
	lastOpAt int64
}

func newProc(m *Machine, id int, seed int64) *Proc {
	return &Proc{
		id:   int32(id),
		m:    m,
		req:  make(chan request),
		resp: make(chan uint64),
		dead: make(chan struct{}),
		rng:  rand.New(rand.NewSource(seed*1_000_003 + int64(id)*7919 + 12345)),
	}
}

// ID returns the processor number in [0, Procs).
func (p *Proc) ID() int { return int(p.id) }

// Now returns the current simulated cycle as seen by this processor.
func (p *Proc) Now() int64 { return p.now }

// Rand returns a deterministic pseudo-random int in [0, n).
func (p *Proc) Rand(n int) int { return p.rng.Intn(n) }

// Rand64 returns a deterministic pseudo-random uint64.
func (p *Proc) Rand64() uint64 { return p.rng.Uint64() }

// Read returns the value of a shared word.
func (p *Proc) Read(a Addr) uint64 {
	p.send(request{kind: reqRead, addr: a})
	return p.await()
}

// Write stores v into a shared word.
func (p *Proc) Write(a Addr, v uint64) {
	p.send(request{kind: reqWrite, addr: a, a: v})
	p.await()
}

// Swap atomically stores v and returns the previous value
// (register-to-memory swap).
func (p *Proc) Swap(a Addr, v uint64) uint64 {
	p.send(request{kind: reqSwap, addr: a, a: v})
	return p.await()
}

// CAS atomically replaces old with new if the word equals old, reporting
// whether it did (compare-and-swap).
func (p *Proc) CAS(a Addr, old, new uint64) bool {
	p.send(request{kind: reqCAS, addr: a, a: old, b: new})
	return p.await() != 0
}

// FetchAdd atomically adds delta and returns the previous value. The paper
// assumes machines without hardware fetch-and-add (it is built in software
// from combining funnels); this primitive exists for baseline ablations.
func (p *Proc) FetchAdd(a Addr, delta uint64) uint64 {
	p.send(request{kind: reqFetchAdd, addr: a, a: delta})
	return p.await()
}

// WaitWhile blocks while the shared word equals v and returns the first
// differing value observed. It models spinning on a locally cached word:
// parked processors consume no simulated (or host) resources until a writer
// invalidates the word. Callers must treat the returned value as a hint and
// re-validate with an atomic operation where needed.
func (p *Proc) WaitWhile(a Addr, v uint64) uint64 {
	p.send(request{kind: reqWaitWhile, addr: a, a: v})
	return p.await()
}

// LocalWork advances this processor's clock by n cycles of private
// computation.
func (p *Proc) LocalWork(n int64) {
	if n <= 0 {
		return
	}
	p.send(request{kind: reqLocalWork, cycles: n})
	p.await()
}

// OpDone marks the completion of one application-level operation for the
// progress watchdog (Config.WatchdogCycles). It costs no simulated
// cycles; programs that do not call it should not enable the watchdog.
func (p *Proc) OpDone() {
	p.m.noteProgress(p)
}

// AppSpan attributes the interval from start to the current cycle to an
// application-level phase (combining, lock-wait) on the configured span
// recorder. It costs no simulated cycles and is free when tracing is off.
func (p *Proc) AppSpan(phase Phase, start int64) {
	if rec := p.m.cfg.Spans; rec != nil && p.now > start {
		rec.RecordSpan(Span{Proc: int(p.id), Start: start, End: p.now, Phase: phase})
	}
}

// OpSpan reports one completed application-level operation (e.g. an
// insert or delete-min) spanning start to the current cycle. It costs no
// simulated cycles and is free when tracing is off.
func (p *Proc) OpSpan(kind string, start int64) {
	if rec := p.m.cfg.Spans; rec != nil {
		rec.RecordOpSpan(int(p.id), kind, start, p.now)
	}
}

func (p *Proc) send(r request) {
	if r.kind != reqDone {
		p.lastKind, p.lastAddr = r.kind, r.addr
	}
	select {
	case p.req <- r:
	case <-p.dead:
		panic(errAborted)
	case <-p.m.stop:
		panic(errAborted)
	}
}

func (p *Proc) await() uint64 {
	select {
	case v := <-p.resp:
		return v
	case <-p.dead:
		panic(errAborted)
	case <-p.m.stop:
		panic(errAborted)
	}
}
