package sim

import "testing"

func TestHotSpotProfiling(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Profile = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := m.Alloc(1)
	cold := m.Alloc(8)
	m.Label(hot, 1, "hot-counter")
	m.Label(cold, 8, "private-slots")
	_, err = m.Run(func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.FetchAdd(hot, 1)                    // everyone hammers one word
			p.Write(cold+Addr(p.ID()), uint64(i)) // private, owned after first touch
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	spots := m.HotSpots(3)
	if len(spots) == 0 {
		t.Fatal("no hot spots recorded")
	}
	if spots[0].Addr != hot || spots[0].Name != "hot-counter" {
		t.Fatalf("top hot spot = %+v, want the shared counter", spots[0])
	}
	if spots[0].Contended == 0 || spots[0].WaitCycles == 0 {
		t.Fatalf("shared counter shows no contention: %+v", spots[0])
	}
	for _, s := range spots[1:] {
		if s.Name == "private-slots" && s.WaitCycles > 0 {
			t.Fatalf("private slot shows contention: %+v", s)
		}
	}
}

func TestHotSpotsDisabledByDefault(t *testing.T) {
	m, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	if _, err := m.Run(func(p *Proc) { p.Write(a, 1) }); err != nil {
		t.Fatal(err)
	}
	if got := m.HotSpots(5); got != nil {
		t.Fatalf("HotSpots without profiling = %v, want nil", got)
	}
}

func TestLabelFor(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(10)
	m.Label(a, 10, "outer")
	m.Label(a+2, 3, "inner")
	if got := m.LabelFor(a + 3); got != "inner" {
		t.Errorf("LabelFor inner = %q", got)
	}
	if got := m.LabelFor(a + 8); got != "outer" {
		t.Errorf("LabelFor outer = %q", got)
	}
	if got := m.LabelFor(a + 100); got != "" {
		t.Errorf("LabelFor unlabeled = %q", got)
	}
}

func TestTraceHook(t *testing.T) {
	var events []TraceEvent
	cfg := DefaultConfig(1)
	cfg.Trace = func(e TraceEvent) { events = append(events, e) }
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(2)
	if _, err := m.Run(func(p *Proc) {
		p.Write(a, 1)
		p.Read(a)
		p.Swap(a+1, 2)
		p.CAS(a+1, 2, 3)
		p.FetchAdd(a, 1)
		p.LocalWork(10)
		p.WaitWhile(a, 99)
	}); err != nil {
		t.Fatal(err)
	}
	want := []TraceOp{TraceWrite, TraceRead, TraceSwap, TraceCAS, TraceFetchAdd, TraceLocalWork, TraceWaitWhile}
	if len(events) != len(want) {
		t.Fatalf("traced %d events, want %d: %v", len(events), len(want), events)
	}
	for i, e := range events {
		if e.Op != want[i] {
			t.Errorf("event %d = %v, want %v", i, e.Op, want[i])
		}
		if e.Proc != 0 {
			t.Errorf("event %d proc = %d", i, e.Proc)
		}
	}
	// Addresses recorded for memory ops.
	if events[0].Addr != a || events[2].Addr != a+1 {
		t.Errorf("addresses wrong: %+v", events)
	}
}

func TestTraceOpStrings(t *testing.T) {
	ops := []TraceOp{TraceRead, TraceWrite, TraceSwap, TraceCAS, TraceFetchAdd, TraceWaitWhile, TraceLocalWork, TraceOp(99)}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty name for %d", op)
		}
	}
}
