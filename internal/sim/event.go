package sim

// Event kinds: an ordinary processor resumption, or the enactment of a
// fault-plan crash.
const (
	evResume uint8 = iota
	evCrash
)

// event is a scheduled resumption of a processor at a simulated time. val
// carries the result of the memory operation the processor is blocked on.
// kind distinguishes resumptions from fault-plan crash enactments.
type event struct {
	time int64
	seq  uint64
	proc int32
	val  uint64
	kind uint8
}

// eventHeap is a binary min-heap of events ordered by (time, seq). seq is a
// strictly increasing tag assigned at push time, which makes the pop order
// deterministic for simultaneous events.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].time != h.a[j].time {
		return h.a[i].time < h.a[j].time
	}
	return h.a[i].seq < h.a[j].seq
}
