// Package obs provides the serving stack's hot-path observability
// primitives: lock-free striped counters and fixed-bucket power-of-two
// histograms whose record paths are allocation-free and wait-free (one
// atomic add), cheap enough to sit on every request the pqd server
// handles. The simulator packages have their own cycle-accurate
// instrumentation (internal/trace, simpq.Metrics); this package is the
// wall-clock, in-vivo counterpart for internal/server and internal/wal.
//
// Contention discipline: both Counter and Histogram stripe their state
// across padded cache lines and take a caller-supplied hint (connection
// id, shard index, worker number...) to pick a stripe, so concurrent
// recorders on different connections do not bounce a shared cache line.
// Reads (Load, Snapshot) sum across stripes and are approximate while
// writes are in flight — exactly the quiescent-consistency contract the
// queues themselves offer.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// cacheLine is the assumed coherence granularity for padding.
const cacheLine = 64

// paddedInt64 is one counter stripe on its own cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically adjustable sum striped across cache lines.
// The zero value is not usable; build with NewCounter.
type Counter struct {
	stripes []paddedInt64
	mask    uint64
}

// NewCounter builds a counter with at least the given number of stripes
// (rounded up to a power of two, clamped to [1, 64]).
func NewCounter(stripes int) *Counter {
	return &Counter{stripes: make([]paddedInt64, stripeCount(stripes)),
		mask: uint64(stripeCount(stripes) - 1)}
}

func stripeCount(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Add adds n to the stripe selected by hint. Allocation-free.
func (c *Counter) Add(hint uint64, n int64) {
	c.stripes[hint&c.mask].v.Add(n)
}

// Inc adds one to the stripe selected by hint.
func (c *Counter) Inc(hint uint64) { c.Add(hint, 1) }

// Load sums every stripe. Approximate while writers are in flight.
func (c *Counter) Load() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// Histogram is a fixed-bucket power-of-two histogram: bucket i counts
// observations v < 2^(minShift+i), with a final overflow bucket beyond
// 2^maxShift. Observe is one atomic add — no locks, no allocation, no
// search — making it safe for per-request recording. Values are plain
// int64s; latency recorders pass nanoseconds, size recorders pass
// counts.
type Histogram struct {
	minShift, maxShift int
	nbuckets           int // finite buckets + 1 overflow
	stripes            []histStripe
	mask               uint64
}

// histStripe is one stripe's buckets plus running sum. Stripes are
// sized to whole cache lines so neighbours never share one.
type histStripe struct {
	sum    atomic.Int64
	counts []atomic.Uint64
	_      [cacheLine - 8 - 24]byte
}

// NewHistogram builds a histogram with the given stripe count and
// bucket range: finite bucket upper bounds 2^minShift .. 2^maxShift
// plus an overflow bucket. Panics if maxShift is not in
// (minShift, 62].
func NewHistogram(stripes, minShift, maxShift int) *Histogram {
	if minShift < 0 || maxShift <= minShift || maxShift > 62 {
		panic("obs: NewHistogram shift range invalid")
	}
	n := stripeCount(stripes)
	h := &Histogram{
		minShift: minShift,
		maxShift: maxShift,
		nbuckets: maxShift - minShift + 2,
		stripes:  make([]histStripe, n),
		mask:     uint64(n - 1),
	}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, h.nbuckets)
	}
	return h
}

// LatencyShifts are the bucket bounds used for wall-clock latency in
// nanoseconds: 256ns up to ~34s, 28 finite buckets. Fine enough to
// separate a 2µs in-memory op from a 10ms fsync, coarse enough that a
// snapshot stays small.
const (
	LatencyMinShift = 8  // first bucket < 256ns
	LatencyMaxShift = 35 // last finite bucket < ~34.4s
)

// NewLatencyHistogram builds a histogram with the standard nanosecond
// latency bounds.
func NewLatencyHistogram(stripes int) *Histogram {
	return NewHistogram(stripes, LatencyMinShift, LatencyMaxShift)
}

// bucketOf maps a value to its bucket index.
func (h *Histogram) bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	k := bits.Len64(uint64(v)) // v < 2^k
	switch {
	case k <= h.minShift:
		return 0
	case k > h.maxShift:
		return h.nbuckets - 1
	default:
		return k - h.minShift
	}
}

// Observe records one value into the stripe selected by hint.
// Allocation-free: one bounds computation and two atomic adds.
func (h *Histogram) Observe(hint uint64, v int64) {
	s := &h.stripes[hint&h.mask]
	s.counts[h.bucketOf(v)].Add(1)
	s.sum.Add(v)
}

// Snapshot sums every stripe into an immutable view. It allocates; call
// it from scrape/stats paths, not hot paths.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: make([]float64, h.nbuckets-1),
		Counts: make([]uint64, h.nbuckets),
	}
	for i := 0; i < h.nbuckets-1; i++ {
		s.Bounds[i] = math.Ldexp(1, h.minShift+i) // 2^(minShift+i)
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Sum += st.sum.Load()
		for b := range st.counts {
			c := st.counts[b].Load()
			s.Counts[b] += c
			s.Count += c
		}
	}
	return s
}

// HistSnapshot is a point-in-time histogram view. Counts has one entry
// per finite bound plus a final overflow bucket; bucket i counts
// observations below Bounds[i].
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    int64
}

// Mean is the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the p-quantile (0 <= p <= 1) by linear
// interpolation inside the bucket the rank falls in. Ranks landing in
// the overflow bucket report the last finite bound — the histogram
// cannot see beyond it.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(s.Counts)-1 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WALMetrics is the write-ahead log's instrumentation hook
// (wal.Options.Metrics): the wal writer goroutine records each fsync's
// wall time and, under group commit, how many appended records each
// fsync made durable. Either field may be nil to skip that series.
type WALMetrics struct {
	// FsyncNanos observes fsync(2) wall time in nanoseconds.
	FsyncNanos *Histogram
	// CommitRecords observes appended records per fsync — the group
	// commit batching factor as a distribution (Appends/Syncs is only
	// its mean).
	CommitRecords *Histogram
}
