package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterStripesSum(t *testing.T) {
	c := NewCounter(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(uint64(g), 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 16000 {
		t.Fatalf("Load = %d, want 16000", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 3, 6) // bounds 8, 16, 32, 64 + overflow
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {31, 2},
		{32, 3}, {63, 3}, {64, 4}, {1 << 30, 4}, {-5, 0},
	}
	for _, c := range cases {
		if got := h.bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for _, c := range cases {
		h.Observe(0, c.v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(cases))
	}
	want := []float64{8, 16, 32, 64}
	for i, b := range want {
		if s.Bounds[i] != b {
			t.Fatalf("Bounds = %v, want %v", s.Bounds, want)
		}
	}
	wantCounts := []uint64{3, 2, 2, 2, 2}
	for i, c := range wantCounts {
		if s.Counts[i] != c {
			t.Fatalf("Counts = %v, want %v", s.Counts, wantCounts)
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := NewLatencyHistogram(4)
	// 1000 observations at ~1µs, 10 at ~1ms: p50 must sit near 1µs,
	// p99.5+ near 1ms.
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i), 1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(uint64(i), 1_000_000)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 256 || p50 > 2048 {
		t.Fatalf("p50 = %g, want ~1µs", p50)
	}
	if p999 := s.Quantile(0.999); p999 < 512_000 || p999 > 2_100_000 {
		t.Fatalf("p99.9 = %g, want ~1ms", p999)
	}
	wantMean := (1000*1000.0 + 10*1_000_000.0) / 1010.0
	if m := s.Mean(); math.Abs(m-wantMean) > 1 {
		t.Fatalf("Mean = %g, want %g", m, wantMean)
	}
	if empty := (HistSnapshot{}).Quantile(0.5); empty != 0 {
		t.Fatalf("empty quantile = %g, want 0", empty)
	}
}

// TestRecordPathAllocationFree is the acceptance gate for putting these
// on the serving hot path: Observe and Add must not allocate.
func TestRecordPathAllocationFree(t *testing.T) {
	c := NewCounter(8)
	h := NewLatencyHistogram(8)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3, 1)
	}); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(5, 12345)
	}); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

func TestPromWriter(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Header("pq_ops_total", "counter", "ops")
	p.Sample("pq_ops_total", Labels(map[string]string{"queue": "a\"b", "op": "insert"}), 42)

	h := NewHistogram(1, 3, 5) // bounds 8,16,32
	h.Observe(0, 4)
	h.Observe(0, 20)
	h.Observe(0, 100)
	p.Header("pq_lat", "histogram", "lat")
	p.Histogram("pq_lat", Labels(map[string]string{"queue": "q"}), h.Snapshot(), 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pq_ops_total counter",
		`pq_ops_total{op="insert",queue="a\"b"} 42`,
		`pq_lat_bucket{queue="q",le="8"} 1`,
		`pq_lat_bucket{queue="q",le="32"} 2`,
		`pq_lat_bucket{queue="q",le="+Inf"} 3`,
		`pq_lat_sum{queue="q"} 124`,
		`pq_lat_count{queue="q"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter(16)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		hint := uint64(0)
		for pb.Next() {
			hint++
			c.Add(hint, 1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram(16)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		hint := uint64(0)
		for pb.Next() {
			hint++
			h.Observe(hint, int64(hint)&0xfffff)
		}
	})
}
