package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4), the format the pqd admin endpoint's /metrics serves.
// It is a thin formatter: callers bring their own families and label
// sets; the writer handles HELP/TYPE headers, label escaping, and the
// cumulative-bucket convention for histograms.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err reports the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the HELP/TYPE preamble for a family. typ is "counter",
// "gauge" or "histogram".
func (p *PromWriter) Header(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Labels renders a label set in stable (sorted) order, ready to splice
// into sample lines. An empty map renders as "".
func Labels(kv map[string]string) string {
	if len(kv) == 0 {
		return ""
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// Sample emits one sample line. labels must come from Labels (or be
// empty).
func (p *PromWriter) Sample(name, labels string, v float64) {
	p.printf("%s%s %g\n", name, labels, v)
}

// Histogram emits a full histogram family instance from a snapshot:
// cumulative _bucket lines with le bounds (scaled by scale — pass 1e-9
// to convert nanosecond observations to Prometheus' conventional
// seconds, 1 for unitless sizes), the +Inf bucket, _sum and _count.
func (p *PromWriter) Histogram(name, labels string, s HistSnapshot, scale float64) {
	inner := labels
	if inner != "" {
		inner = strings.TrimSuffix(strings.TrimPrefix(inner, "{"), "}") + ","
	}
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		p.printf("%s_bucket{%sle=\"%g\"} %d\n", name, inner, bound*scale, cum)
	}
	p.printf("%s_bucket{%sle=\"+Inf\"} %d\n", name, inner, s.Count)
	p.printf("%s_sum%s %g\n", name, labels, float64(s.Sum)*scale)
	p.printf("%s_count%s %d\n", name, labels, s.Count)
}
