package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"pq/internal/order"
	"pq/internal/refpq"
)

// asBatch asserts the native batch interface every built queue promises.
func asBatch(t *testing.T, q Queue[uint64]) BatchQueue[uint64] {
	t.Helper()
	bq, ok := q.(BatchQueue[uint64])
	if !ok {
		t.Fatalf("%T does not implement BatchQueue", q)
	}
	return bq
}

// TestDifferentialBatchSequential quick-checks the stack-binned queues
// against the reference oracle on random mixed single/batch tapes,
// value-for-value: run sequentially, InsertBatch must behave like the
// items applied in order and DeleteMinBatch like k sequential deletes.
func TestDifferentialBatchSequential(t *testing.T) {
	for _, alg := range exactSequentialMatch {
		alg := alg
		for _, fifo := range []bool{false, true} {
			fifo := fifo
			name := string(alg)
			if fifo {
				name += "/fifo"
			}
			t.Run(name, func(t *testing.T) {
				f := func(seed int64, nPriRaw uint8) bool {
					npri := int(nPriRaw%16) + 1
					q, err := New[uint64](alg, Config{Priorities: npri, Concurrency: 2, FIFOBins: fifo})
					if err != nil {
						t.Fatal(err)
					}
					bq := asBatch(t, q)
					var ref *refpq.Queue
					if fifo {
						ref = refpq.NewFIFO(npri)
					} else {
						ref = refpq.New(npri)
					}
					rng := rand.New(rand.NewSource(seed))
					seq := 0
					mkVal := func(pri int) uint64 {
						v := uint64(seq)<<8 | uint64(pri)
						seq++
						return v
					}
					for i := 0; i < 200; i++ {
						switch rng.Intn(4) {
						case 0:
							pri := rng.Intn(npri)
							v := mkVal(pri)
							q.Insert(pri, v)
							ref.Insert(pri, v)
						case 1:
							n := rng.Intn(8) + 1
							items := make([]Item[uint64], n)
							refItems := make([]refpq.Item, n)
							for j := range items {
								pri := rng.Intn(npri)
								v := mkVal(pri)
								items[j] = Item[uint64]{Pri: pri, Val: v}
								refItems[j] = refpq.Item{Pri: pri, Val: v}
							}
							bq.InsertBatch(items)
							ref.InsertBatch(refItems)
						case 2:
							gv, gok := q.DeleteMin()
							wv, wok := ref.DeleteMin()
							if gok != wok || (gok && gv != wv) {
								t.Logf("op %d: got (%d,%v), want (%d,%v)", i, gv, gok, wv, wok)
								return false
							}
						case 3:
							k := rng.Intn(8) + 1
							got := bq.DeleteMinBatch(k)
							want := ref.DeleteMinBatch(k)
							if len(got) != len(want) {
								t.Logf("op %d: batch len %d, want %d", i, len(got), len(want))
								return false
							}
							for j := range got {
								if got[j].Val != want[j].Val || got[j].Pri != want[j].Pri {
									t.Logf("op %d[%d]: got %+v, want %+v", i, j, got[j], want[j])
									return false
								}
							}
						}
					}
					// Drain with one big batch and compare the tails.
					got := bq.DeleteMinBatch(ref.Len() + 1)
					want := ref.DeleteMinBatch(ref.Len() + 1)
					if len(got) != len(want) {
						t.Logf("drain: %d items, want %d", len(got), len(want))
						return false
					}
					for j := range got {
						if got[j] != (Item[uint64](want[j])) {
							t.Logf("drain[%d]: got %+v, want %+v", j, got[j], want[j])
							return false
						}
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDifferentialBatchHeaps covers the remaining algorithms: priorities
// must match the oracle exactly for the heaps (sequentially they always
// pop the true minimum), while the skip list — whose delete bin serves
// one stale priority level — is held to ok-equivalence plus conservation.
func TestDifferentialBatchHeaps(t *testing.T) {
	for _, alg := range []Algorithm{SingleLock, HuntEtAl, SkipList} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			f := func(seed int64, nPriRaw uint8) bool {
				npri := int(nPriRaw%16) + 1
				q, err := New[uint64](alg, Config{Priorities: npri, Concurrency: 2})
				if err != nil {
					t.Fatal(err)
				}
				bq := asBatch(t, q)
				ref := refpq.New(npri)
				rng := rand.New(rand.NewSource(seed))
				outstanding := map[uint64]bool{}
				seq := 0
				mkVal := func(pri int) uint64 {
					v := uint64(seq)<<8 | uint64(pri)
					seq++
					outstanding[v] = true
					return v
				}
				take := func(it Item[uint64]) bool {
					if !outstanding[it.Val] {
						t.Logf("returned %+v which is not outstanding", it)
						return false
					}
					delete(outstanding, it.Val)
					if it.Pri != int(it.Val&0xff) {
						t.Logf("item %+v reports wrong priority", it)
						return false
					}
					return true
				}
				for i := 0; i < 200; i++ {
					switch rng.Intn(4) {
					case 0:
						pri := rng.Intn(npri)
						v := mkVal(pri)
						q.Insert(pri, v)
						ref.Insert(pri, v)
					case 1:
						n := rng.Intn(8) + 1
						items := make([]Item[uint64], n)
						refItems := make([]refpq.Item, n)
						for j := range items {
							pri := rng.Intn(npri)
							v := mkVal(pri)
							items[j] = Item[uint64]{Pri: pri, Val: v}
							refItems[j] = refpq.Item{Pri: pri, Val: v}
						}
						bq.InsertBatch(items)
						ref.InsertBatch(refItems)
					case 2:
						gv, gok := q.DeleteMin()
						wv, wok := ref.DeleteMin()
						if gok != wok {
							t.Logf("op %d: ok mismatch %v vs %v", i, gok, wok)
							return false
						}
						if gok {
							if !take(Item[uint64]{Pri: int(gv & 0xff), Val: gv}) {
								return false
							}
							if alg != SkipList && gv&0xff != wv&0xff {
								t.Logf("op %d: pri %d, want %d", i, gv&0xff, wv&0xff)
								return false
							}
						}
					case 3:
						k := rng.Intn(8) + 1
						got := bq.DeleteMinBatch(k)
						want := ref.DeleteMinBatch(k)
						if len(got) != len(want) {
							t.Logf("op %d: batch len %d, want %d", i, len(got), len(want))
							return false
						}
						for j := range got {
							if !take(got[j]) {
								return false
							}
							if alg != SkipList && got[j].Pri != want[j].Pri {
								t.Logf("op %d[%d]: pri %d, want %d", i, j, got[j].Pri, want[j].Pri)
								return false
							}
						}
					}
				}
				// Conservation: both sides must hold the same tail.
				got := bq.DeleteMinBatch(ref.Len() + 1)
				if len(got) != ref.Len() {
					t.Logf("drain: %d items, want %d", len(got), ref.Len())
					return false
				}
				for _, it := range got {
					if !take(it) {
						return false
					}
				}
				return len(outstanding) == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// checkBatchHistory judges one algorithm's concurrent history with the
// strongest sound rule set for its consistency class: the strictly
// linearizable queues get the full checker including the batch rules; the
// Hunt heap (transient local inversions mid-race) and the skip list (its
// delete bin serves a stale priority level) keep uniqueness, precedence
// and emptiness but not the priority-sensitive rules; the quiescently
// consistent funnel family is checked at busy-period granularity.
func checkBatchHistory(t *testing.T, alg Algorithm, history []order.Op) {
	t.Helper()
	var vs []order.Violation
	switch alg {
	case SingleLock, SimpleLinear:
		vs = order.Check(history)
	case HuntEtAl, SkipList:
		for _, v := range order.Check(history) {
			if v.Rule != "priority" && v.Rule != "batch-order" {
				vs = append(vs, v)
			}
		}
	default:
		vs = order.CheckQuiescent(history)
	}
	if len(vs) != 0 {
		for _, v := range vs[:min(len(vs), 5)] {
			t.Error(v)
		}
		t.Fatalf("%s: %d history violations", alg, len(vs))
	}
}

// TestBatchStressConcurrent is the differential batch-oracle stress
// harness: every algorithm runs goroutines interleaving randomized
// single, batch and mixed operations; the recorded history (timestamped
// by one atomic ticket counter, so intervals are real-time consistent) is
// checked by the interval-order checker under each algorithm's rules, and
// every inserted value must come out exactly once.
func TestBatchStressConcurrent(t *testing.T) {
	goroutines, opsPerG := 8, 250
	if testing.Short() {
		goroutines, opsPerG = 4, 120
	}
	const npri = 8
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			q := build(t, alg, npri)
			bq := asBatch(t, q)
			var tick atomic.Int64
			var batchID atomic.Uint64
			histories := make([][]order.Op, goroutines)
			inserted := make([]map[uint64]bool, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				inserted[g] = map[uint64]bool{}
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
					h := &histories[g]
					seq := 0
					for i := 0; i < opsPerG; i++ {
						switch rng.Intn(4) {
						case 0:
							pri := rng.Intn(npri)
							v := enc(pri, g, seq)
							seq++
							inserted[g][v] = true
							start := tick.Add(1)
							q.Insert(pri, v)
							*h = append(*h, order.Op{
								Kind: order.Insert, Pri: pri, Val: v, OK: true,
								Start: start, End: tick.Add(1),
							})
						case 1:
							n := rng.Intn(7) + 2
							items := make([]Item[uint64], n)
							for j := range items {
								pri := rng.Intn(npri)
								items[j] = Item[uint64]{Pri: pri, Val: enc(pri, g, seq)}
								seq++
								inserted[g][items[j].Val] = true
							}
							id := batchID.Add(1)
							start := tick.Add(1)
							bq.InsertBatch(items)
							end := tick.Add(1)
							for _, it := range items {
								*h = append(*h, order.Op{
									Kind: order.Insert, Pri: it.Pri, Val: it.Val, OK: true,
									Start: start, End: end, Batch: id,
								})
							}
						case 2:
							start := tick.Add(1)
							v, ok := q.DeleteMin()
							op := order.Op{Kind: order.DeleteMin, OK: ok, Start: start, End: tick.Add(1)}
							if ok {
								op.Pri, op.Val = dec(v), v
							}
							*h = append(*h, op)
						case 3:
							k := rng.Intn(7) + 2
							id := batchID.Add(1)
							start := tick.Add(1)
							got := bq.DeleteMinBatch(k)
							end := tick.Add(1)
							if len(got) == 0 {
								*h = append(*h, order.Op{
									Kind: order.DeleteMin, OK: false,
									Start: start, End: end, Batch: id,
								})
							}
							for _, it := range got {
								*h = append(*h, order.Op{
									Kind: order.DeleteMin, Pri: it.Pri, Val: it.Val, OK: true,
									Start: start, End: end, Batch: id,
								})
							}
						}
					}
				}()
			}
			wg.Wait()

			var all []order.Op
			for _, h := range histories {
				all = append(all, h...)
			}

			// Conservation: everything inserted comes out exactly once,
			// with the priority it went in under.
			remaining := map[uint64]bool{}
			for _, m := range inserted {
				for v := range m {
					remaining[v] = true
				}
			}
			consume := func(val uint64, pri int, where string) {
				if !remaining[val] {
					t.Fatalf("%s returned %#x which is not outstanding", where, val)
				}
				delete(remaining, val)
				if pri != dec(val) {
					t.Fatalf("%s returned %#x with priority %d, inserted at %d", where, val, pri, dec(val))
				}
			}
			for _, op := range all {
				if op.Kind == order.DeleteMin && op.OK {
					consume(op.Val, op.Pri, "concurrent delete")
				}
			}
			for {
				got := bq.DeleteMinBatch(16)
				if len(got) == 0 {
					break
				}
				for _, it := range got {
					consume(it.Val, it.Pri, "drain")
				}
			}
			if _, ok := q.DeleteMin(); ok {
				t.Fatal("DeleteMin succeeded after batch drain reported dry")
			}
			for v := range remaining {
				t.Fatalf("value %#x lost", v)
			}

			checkBatchHistory(t, alg, all)
		})
	}
}

// TestBatchEdgeCases pins the degenerate batch inputs for every
// algorithm: empty and nil inserts are no-ops, non-positive and oversized
// delete requests behave, and a whole-queue batch drains in priority
// order at quiescence.
func TestBatchEdgeCases(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			q := build(t, alg, 4)
			bq := asBatch(t, q)
			bq.InsertBatch(nil)
			bq.InsertBatch([]Item[uint64]{})
			if got := bq.DeleteMinBatch(0); len(got) != 0 {
				t.Fatalf("DeleteMinBatch(0) = %v", got)
			}
			if got := bq.DeleteMinBatch(-3); len(got) != 0 {
				t.Fatalf("DeleteMinBatch(-3) = %v", got)
			}
			if got := bq.DeleteMinBatch(5); len(got) != 0 {
				t.Fatalf("DeleteMinBatch on empty queue = %v", got)
			}
			bq.InsertBatch([]Item[uint64]{{Pri: 3, Val: 30}, {Pri: 0, Val: 1}, {Pri: 2, Val: 20}, {Pri: 0, Val: 2}})
			got := bq.DeleteMinBatch(100)
			if len(got) != 4 {
				t.Fatalf("drained %d items, want 4", len(got))
			}
			for i := 1; i < len(got); i++ {
				if got[i].Pri < got[i-1].Pri {
					t.Fatalf("batch out of order: %v", got)
				}
			}
			// A half-inserted batch must not survive a bad priority.
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("InsertBatch with out-of-range priority did not panic")
					}
				}()
				bq.InsertBatch([]Item[uint64]{{Pri: 0, Val: 9}, {Pri: 99, Val: 10}})
			}()
			if got := bq.DeleteMinBatch(4); len(got) != 0 {
				t.Fatalf("half-inserted batch left items: %v", got)
			}
		})
	}
}
