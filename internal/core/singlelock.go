package core

import "pq/internal/mcs"

// singleLock is the baseline: a sequential binary heap under one MCS
// lock. Linearizable, supports the full priority range, and every
// operation serializes.
type singleLock[V any] struct {
	npri int
	lock mcs.Lock
	pris []int
	vals []V
}

// NewSingleLock builds the single-lock heap queue.
func NewSingleLock[V any](cfg Config) Queue[V] {
	return &singleLock[V]{npri: cfg.Priorities}
}

func (q *singleLock[V]) NumPriorities() int { return q.npri }

func (q *singleLock[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	n := q.lock.Acquire()
	q.insertLocked(pri, v)
	q.lock.Release(n)
}

// insertLocked sifts v into the heap; the lock must be held.
func (q *singleLock[V]) insertLocked(pri int, v V) {
	q.pris = append(q.pris, pri)
	q.vals = append(q.vals, v)
	i := len(q.pris) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.pris[parent] <= pri {
			break
		}
		q.pris[i], q.vals[i] = q.pris[parent], q.vals[parent]
		i = parent
	}
	q.pris[i], q.vals[i] = pri, v
}

func (q *singleLock[V]) DeleteMin() (V, bool) {
	n := q.lock.Acquire()
	_, v, ok := q.deleteMinLocked()
	q.lock.Release(n)
	return v, ok
}

// deleteMinLocked pops the heap minimum; the lock must be held.
func (q *singleLock[V]) deleteMinLocked() (int, V, bool) {
	var zero V
	if len(q.pris) == 0 {
		return 0, zero, false
	}
	outPri, out := q.pris[0], q.vals[0]
	last := len(q.pris) - 1
	lp, lv := q.pris[last], q.vals[last]
	q.vals[last] = zero
	q.pris, q.vals = q.pris[:last], q.vals[:last]
	if last > 0 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			if l >= last {
				break
			}
			c, cp := l, q.pris[l]
			if r < last && q.pris[r] < cp {
				c, cp = r, q.pris[r]
			}
			if cp >= lp {
				break
			}
			q.pris[i], q.vals[i] = cp, q.vals[c]
			i = c
		}
		q.pris[i], q.vals[i] = lp, lv
	}
	return outPri, out, true
}

// InsertBatch inserts the whole batch under one lock acquisition.
func (q *singleLock[V]) InsertBatch(items []Item[V]) {
	for _, it := range items {
		checkPri(it.Pri, q.npri)
	}
	if len(items) == 0 {
		return
	}
	n := q.lock.Acquire()
	for _, it := range items {
		q.insertLocked(it.Pri, it.Val)
	}
	q.lock.Release(n)
}

// DeleteMinBatch pops up to k minima under one lock acquisition.
func (q *singleLock[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	out := make([]Item[V], 0, k)
	n := q.lock.Acquire()
	for len(out) < k {
		pri, v, ok := q.deleteMinLocked()
		if !ok {
			break
		}
		out = append(out, Item[V]{Pri: pri, Val: v})
	}
	q.lock.Release(n)
	return out
}
