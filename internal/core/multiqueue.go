package core

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// multiQueue is the relaxed priority queue of Williams & Sanders
// ("Engineering MultiQueues", arXiv 2107.01350): nq = ceilPow2(C·p)
// sequential binary heaps, each under its own mutex. Insert pushes into
// a random heap; DeleteMin peeks the cached top priorities of two random
// heaps and pops from the better one. No operation ever waits for a
// lock — TryLock failures re-roll — so the only global coordination is
// the cache traffic on the per-heap top words.
//
// The price is relaxation: DeleteMin may return an item while up to
// O(C·p) better ones sit in other heaps (expected rank error, with an
// exponential tail). The queue measures that error exactly when the
// priority range is small enough (see RelaxStats); internal/order's
// CheckRelaxed and the refpq rank oracle verify it externally.
//
// Emptiness is exact at quiescence: an item's heap never changes between
// insert and pop, and Insert publishes the heap's new top before
// returning, so the full scan in popScan — which skips only heaps whose
// top word says empty and retries while any skipped heap was lock-busy —
// cannot miss an item whose Insert completed before DeleteMin began.
type multiQueue[V any] struct {
	npri     int
	fifo     bool
	mask     uint64
	qs       []mqLocal[V]
	seq      atomic.Uint64 // global tie-break sequence for FIFO/LIFO bins
	sticky   int
	popBatch int

	// Per-goroutine slots carry sticky choices and the deletion buffer.
	// They live in a sync.Pool for affinity, but every slot is also kept
	// in slots so popScan and Drain can see buffered items.
	useSlots bool
	slotPool sync.Pool
	slotMu   sync.Mutex
	slots    []*mqSlot[V]

	// Rank-error accounting (nil present disables it): present counts
	// queued items per priority, so a pop's rank error is the number of
	// strictly-better items present. ranks is an exact rank histogram;
	// its last entry aggregates the tail.
	present []atomic.Int64
	pops    atomic.Int64
	rankSum atomic.Int64
	rankMax atomic.Int64
	ranks   []atomic.Int64
}

// mqRankBuckets bounds both the exact rank histogram and the priority
// range we are willing to prefix-sum on every pop.
const mqRankBuckets = 4096

// mqEmptyTop is the top-priority cache value of an empty sub-heap. It
// compares greater than any real priority.
const mqEmptyTop = int64(1) << 62

// mqLocal is one sequential sub-heap. top caches h[0].pri (or
// mqEmptyTop) so DeleteMin can compare candidates without locking; it is
// updated before the mutex is released. The pad keeps hot neighbours off
// one cache line.
type mqLocal[V any] struct {
	mu  sync.Mutex
	top atomic.Int64
	h   []mqEnt[V]
	_   [64]byte
}

type mqEnt[V any] struct {
	pri int
	seq uint64
	val V
}

// mqSlot is per-goroutine state: the sticky sub-heap choices and the
// deletion buffer. buf[head:] holds popped-but-undelivered items.
type mqSlot[V any] struct {
	mu   sync.Mutex
	buf  []Item[V]
	head int

	left int // sticky operations remaining before a re-roll
	insQ uint64
	delA uint64
	delB uint64
}

// NewMultiQueue builds a MultiQueue from cfg (see the MultiQueue* Config
// fields). The zero knobs give the Williams & Sanders baseline: C=2, no
// stickiness, no buffering.
func NewMultiQueue[V any](cfg Config) Queue[V] {
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	c := cfg.MultiQueueC
	if c <= 0 {
		c = 2
	}
	nq := ceilPow2(c * conc)
	if nq < 2 {
		nq = 2
	}
	q := &multiQueue[V]{
		npri:     cfg.Priorities,
		fifo:     cfg.FIFOBins,
		mask:     uint64(nq - 1),
		qs:       make([]mqLocal[V], nq),
		sticky:   cfg.MultiQueueSticky,
		popBatch: cfg.MultiQueuePopBatch,
	}
	for i := range q.qs {
		q.qs[i].top.Store(mqEmptyTop)
	}
	q.useSlots = q.sticky > 0 || q.popBatch > 1
	if q.useSlots {
		q.slotPool.New = func() any {
			s := &mqSlot[V]{}
			q.slotMu.Lock()
			q.slots = append(q.slots, s)
			q.slotMu.Unlock()
			return s
		}
	}
	if !cfg.MultiQueueNoRank && cfg.Priorities <= mqRankBuckets {
		q.present = make([]atomic.Int64, cfg.Priorities)
		q.ranks = make([]atomic.Int64, mqRankBuckets+1)
	}
	return q
}

func (q *multiQueue[V]) NumPriorities() int { return q.npri }

// less orders heap entries: by priority, then by the global insertion
// sequence (FIFO under FIFOBins, otherwise LIFO like the paper's bins).
func (q *multiQueue[V]) less(a, b mqEnt[V]) bool {
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	if q.fifo {
		return a.seq < b.seq
	}
	return a.seq > b.seq
}

// pushLocked adds an entry to l (whose mutex is held) and republishes
// its top.
func (q *multiQueue[V]) pushLocked(l *mqLocal[V], pri int, v V) {
	l.h = append(l.h, mqEnt[V]{pri: pri, seq: q.seq.Add(1), val: v})
	for i := len(l.h) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(l.h[i], l.h[p]) {
			break
		}
		l.h[i], l.h[p] = l.h[p], l.h[i]
		i = p
	}
	l.top.Store(int64(l.h[0].pri))
	if q.present != nil {
		q.present[pri].Add(1)
	}
}

// popLocked removes up to k entries from l (whose mutex is held),
// recording each pop's rank error.
func (q *multiQueue[V]) popLocked(l *mqLocal[V], k int, out []Item[V]) []Item[V] {
	for len(l.h) > 0 && k > 0 {
		ent := l.h[0]
		last := len(l.h) - 1
		l.h[0] = l.h[last]
		var zero mqEnt[V]
		l.h[last] = zero
		l.h = l.h[:last]
		for i := 0; ; {
			c := 2*i + 1
			if c >= len(l.h) {
				break
			}
			if c+1 < len(l.h) && q.less(l.h[c+1], l.h[c]) {
				c++
			}
			if !q.less(l.h[c], l.h[i]) {
				break
			}
			l.h[i], l.h[c] = l.h[c], l.h[i]
			i = c
		}
		q.noteRank(ent.pri)
		out = append(out, Item[V]{Pri: ent.pri, Val: ent.val})
		k--
	}
	if len(l.h) == 0 {
		l.top.Store(mqEmptyTop)
	} else {
		l.top.Store(int64(l.h[0].pri))
	}
	return out
}

// noteRank records one pop's rank error: the number of strictly-better
// items present across all sub-heaps at pop time. Concurrent inserts and
// pops make individual per-priority reads transiently stale, but each
// counter is exact at quiescence, so sequential tests see exact ranks.
func (q *multiQueue[V]) noteRank(pri int) {
	if q.present == nil {
		return
	}
	rank := int64(0)
	for p := 0; p < pri; p++ {
		if n := q.present[p].Load(); n > 0 {
			rank += n
		}
	}
	q.present[pri].Add(-1)
	q.pops.Add(1)
	q.rankSum.Add(rank)
	idx := rank
	if idx >= int64(len(q.ranks)) {
		idx = int64(len(q.ranks)) - 1
	}
	q.ranks[idx].Add(1)
	for {
		cur := q.rankMax.Load()
		if rank <= cur || q.rankMax.CompareAndSwap(cur, rank) {
			break
		}
	}
}

func (q *multiQueue[V]) getSlot() *mqSlot[V] { return q.slotPool.Get().(*mqSlot[V]) }

// pick returns a uniformly random sub-heap index.
func (q *multiQueue[V]) pick() uint64 { return rand.Uint64() & q.mask }

func (q *multiQueue[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	if !q.useSlots {
		q.insertLoop(pri, v, nil)
		return
	}
	s := q.getSlot()
	q.insertLoop(pri, v, s)
	q.slotPool.Put(s)
}

func (q *multiQueue[V]) insertLoop(pri int, v V, s *mqSlot[V]) {
	for {
		var i uint64
		if s != nil && q.sticky > 0 {
			if s.left <= 0 {
				s.insQ, s.delA, s.delB = q.pick(), q.pick(), q.pick()
				s.left = q.sticky
			}
			i = s.insQ
		} else {
			i = q.pick()
		}
		l := &q.qs[i]
		if !l.mu.TryLock() {
			if s != nil {
				s.left = 0 // contended choice: re-roll next time
			}
			continue
		}
		q.pushLocked(l, pri, v)
		l.mu.Unlock()
		if s != nil && q.sticky > 0 {
			s.left--
		}
		return
	}
}

func (q *multiQueue[V]) DeleteMin() (V, bool) {
	var zero V
	if !q.useSlots {
		out := q.popSome(nil, 1, nil)
		if len(out) == 0 {
			return zero, false
		}
		return out[0].Val, true
	}
	s := q.getSlot()
	s.mu.Lock()
	if s.head < len(s.buf) {
		it := s.buf[s.head]
		s.buf[s.head] = Item[V]{}
		s.head++
		s.mu.Unlock()
		q.slotPool.Put(s)
		return it.Val, true
	}
	s.mu.Unlock()
	n := q.popBatch
	if n < 1 {
		n = 1
	}
	out := q.popSome(s, n, nil)
	if len(out) == 0 {
		q.slotPool.Put(s)
		return zero, false
	}
	if len(out) > 1 {
		s.mu.Lock()
		s.buf = append(s.buf[:0], out[1:]...)
		s.head = 0
		s.mu.Unlock()
	}
	q.slotPool.Put(s)
	return out[0].Val, true
}

// popSome pops up to k items from one sub-heap chosen by the two-choice
// rule, appending to out. An unchanged length means the queue was empty
// (per a full clean scan), not merely that the candidates were.
func (q *multiQueue[V]) popSome(s *mqSlot[V], k int, out []Item[V]) []Item[V] {
	for {
		var a, b uint64
		if s != nil && q.sticky > 0 {
			if s.left <= 0 {
				s.insQ, s.delA, s.delB = q.pick(), q.pick(), q.pick()
				s.left = q.sticky
			}
			a, b = s.delA, s.delB
		} else {
			a, b = q.pick(), q.pick()
		}
		la, lb := &q.qs[a], &q.qs[b]
		ta, tb := la.top.Load(), lb.top.Load()
		if ta == mqEmptyTop && tb == mqEmptyTop {
			return q.popScan(s, k, out)
		}
		best := la
		if tb < ta {
			best = lb
		}
		if !best.mu.TryLock() {
			if s != nil {
				s.left = 0
			}
			continue
		}
		got := q.popLocked(best, k, out)
		best.mu.Unlock()
		if len(got) > len(out) {
			if s != nil && q.sticky > 0 {
				s.left--
			}
			return got
		}
		// The candidate drained between peek and lock; try again.
		if s != nil {
			s.left = 0
		}
	}
}

// popScan is the slow path when both sampled tops were empty: serve any
// slot's deletion buffer, then sweep every sub-heap, skipping those
// whose top word says empty and retrying the sweep while any non-empty
// heap was lock-busy. Returning out unchanged means the queue is empty:
// every heap showed an empty top in one pass with no busy locks (sound —
// see the type comment), and every deletion buffer was empty.
func (q *multiQueue[V]) popScan(self *mqSlot[V], k int, out []Item[V]) []Item[V] {
	start := len(out)
	for {
		if q.useSlots {
			q.slotMu.Lock()
			slots := make([]*mqSlot[V], len(q.slots))
			copy(slots, q.slots)
			q.slotMu.Unlock()
			for _, s := range slots {
				if s == self {
					continue // self's buffer is known-empty (and its mu may be hot)
				}
				s.mu.Lock()
				for s.head < len(s.buf) && len(out)-start < k {
					out = append(out, s.buf[s.head])
					s.buf[s.head] = Item[V]{}
					s.head++
				}
				s.mu.Unlock()
				if len(out) > start {
					return out
				}
			}
		}
		busy := false
		for i := range q.qs {
			l := &q.qs[i]
			if l.top.Load() == mqEmptyTop {
				continue
			}
			if !l.mu.TryLock() {
				busy = true
				continue
			}
			got := q.popLocked(l, k, out)
			l.mu.Unlock()
			if len(got) > start {
				return got
			}
		}
		if !busy {
			return out
		}
	}
}

// InsertBatch pushes the whole batch into one sub-heap under one lock
// hold — the insertion-buffering path of Williams & Sanders, where a
// batch trades a transient rank-error bump for a single synchronization.
func (q *multiQueue[V]) InsertBatch(items []Item[V]) {
	runs := groupByPri(items, q.npri)
	if len(runs) == 0 {
		return
	}
	var s *mqSlot[V]
	if q.useSlots {
		s = q.getSlot()
	}
	for {
		var i uint64
		if s != nil && q.sticky > 0 {
			if s.left <= 0 {
				s.insQ, s.delA, s.delB = q.pick(), q.pick(), q.pick()
				s.left = q.sticky
			}
			i = s.insQ
		} else {
			i = q.pick()
		}
		l := &q.qs[i]
		if !l.mu.TryLock() {
			if s != nil {
				s.left = 0
			}
			continue
		}
		for _, run := range runs {
			for _, v := range run.vals {
				q.pushLocked(l, run.pri, v)
			}
		}
		l.mu.Unlock()
		if s != nil && q.sticky > 0 {
			s.left--
		}
		break
	}
	if s != nil {
		q.slotPool.Put(s)
	}
}

// DeleteMinBatch drains the goroutine's deletion buffer first, then
// takes two-choice rounds until k items are out or a full scan proves
// the queue empty. Items arrive in per-round nondecreasing priority, but
// the concatenation is only approximately sorted — the relaxed contract.
func (q *multiQueue[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	var out []Item[V]
	var s *mqSlot[V]
	if q.useSlots {
		s = q.getSlot()
		s.mu.Lock()
		for s.head < len(s.buf) && len(out) < k {
			out = append(out, s.buf[s.head])
			s.buf[s.head] = Item[V]{}
			s.head++
		}
		s.mu.Unlock()
	}
	for len(out) < k {
		got := q.popSome(s, k-len(out), out)
		if len(got) == len(out) {
			break
		}
		out = got
	}
	if s != nil {
		q.slotPool.Put(s)
	}
	return out
}

// RelaxStats reports the measured rank-error distribution (see the
// RelaxStats type). Tracked is false when accounting was disabled by
// MultiQueueNoRank or a priority range beyond mqRankBuckets.
func (q *multiQueue[V]) RelaxStats() RelaxStats {
	st := RelaxStats{Tracked: q.present != nil}
	if !st.Tracked {
		return st
	}
	st.Pops = q.pops.Load()
	st.RankSum = q.rankSum.Load()
	st.RankMax = q.rankMax.Load()
	st.Counts = make([]int64, len(q.ranks))
	for i := range q.ranks {
		st.Counts[i] = q.ranks[i].Load()
	}
	return st
}
