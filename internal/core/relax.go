package core

// RelaxStats is the measured rank-error distribution of a relaxed
// queue. A pop's rank error is the number of strictly-better items
// present in the queue at pop time — 0 for an exact delete-min. The
// Williams & Sanders analysis bounds the expectation by O(C·p) with an
// exponential tail; these counters let tests and dashboards check that
// against reality.
type RelaxStats struct {
	// Pops counts accounted delete-mins, RankSum their total rank error
	// and RankMax the worst single pop.
	Pops    int64
	RankSum int64
	RankMax int64
	// Counts[r] counts pops with rank error exactly r; the last entry
	// aggregates the tail at or beyond len(Counts)-1.
	Counts []int64
	// Tracked is false when accounting was disabled (by configuration or
	// a priority range too large to track); the other fields are then
	// zero.
	Tracked bool
}

// Mean reports the average rank error, or 0 with no pops.
func (s RelaxStats) Mean() float64 {
	if s.Pops == 0 {
		return 0
	}
	return float64(s.RankSum) / float64(s.Pops)
}

// Quantile reports the smallest rank r such that at least p (in [0,1])
// of all pops had rank error <= r. The overflow bucket reports RankMax.
func (s RelaxStats) Quantile(p float64) float64 {
	if s.Pops == 0 {
		return 0
	}
	need := int64(p * float64(s.Pops))
	if need < 1 {
		need = 1
	}
	var cum int64
	for r, c := range s.Counts {
		cum += c
		if cum >= need {
			if r == len(s.Counts)-1 {
				return float64(s.RankMax)
			}
			return float64(r)
		}
	}
	return float64(s.RankMax)
}

// Merge combines two distributions (e.g. across shards).
func (s RelaxStats) Merge(o RelaxStats) RelaxStats {
	if !o.Tracked {
		return s
	}
	if !s.Tracked {
		return o
	}
	out := RelaxStats{
		Pops:    s.Pops + o.Pops,
		RankSum: s.RankSum + o.RankSum,
		RankMax: max(s.RankMax, o.RankMax),
		Tracked: true,
	}
	n := max(len(s.Counts), len(o.Counts))
	out.Counts = make([]int64, n)
	copy(out.Counts, s.Counts)
	for i, c := range o.Counts {
		out.Counts[i] += c
	}
	return out
}

// RelaxedQueue is implemented by relaxed algorithms; strict queues never
// implement it, so a type assertion doubles as an IsRelaxed check on a
// live queue.
type RelaxedQueue interface {
	RelaxStats() RelaxStats
}

var (
	_ BatchQueue[int] = (*multiQueue[int])(nil)
	_ RelaxedQueue    = (*multiQueue[int])(nil)
)
