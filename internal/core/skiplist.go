package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Skip-list link states (same machine as internal/simpq's SkipList).
const (
	slUnthreaded int32 = iota
	slThreading
	slThreaded
	slUnlinking
)

type slLink[V any] struct {
	level int
	fwd   []atomic.Int32 // link index + 1; 0 = nil
	state atomic.Int32
	mu    sync.Mutex
	bin   bin[V]
}

// skipList is the bounded-range skip-list queue of Figure 12: one
// preallocated link (with a bin) per priority, threaded into a Pugh-style
// concurrent skip list while its bin may hold items; deletions drain a
// separate delete-bin (Johnson's idea), refilled by unlinking the first
// link.
type skipList[V any] struct {
	npri     int
	maxLevel int
	headFwd  []atomic.Int32
	headMu   sync.Mutex
	links    []slLink[V]
	delBin   atomic.Int32 // link index + 1, or 0
	delMu    sync.Mutex
}

// NewSkipList builds the skip-list queue. Link heights use Pugh's p=1/2
// distribution from a deterministic source, fixed at construction.
func NewSkipList[V any](cfg Config) Queue[V] {
	maxLevel := 1
	for n := cfg.Priorities; n > 1; n /= 2 {
		maxLevel++
	}
	q := &skipList[V]{
		npri:     cfg.Priorities,
		maxLevel: maxLevel,
		headFwd:  make([]atomic.Int32, maxLevel),
		links:    make([]slLink[V], cfg.Priorities),
	}
	rng := rand.New(rand.NewSource(0x5eed51))
	for i := range q.links {
		level := 1
		for level < maxLevel && rng.Intn(2) == 0 {
			level++
		}
		q.links[i].level = level
		q.links[i].fwd = make([]atomic.Int32, level)
	}
	return q
}

func (q *skipList[V]) NumPriorities() int { return q.npri }

func (q *skipList[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	l := &q.links[pri]
	l.bin.insert(v)
	q.ensureThreaded(pri)
}

// ensureThreaded links pri's node into the skip list if no one has yet.
func (q *skipList[V]) ensureThreaded(pri int) {
	l := &q.links[pri]
	if l.state.Load() == slUnthreaded && l.state.CompareAndSwap(slUnthreaded, slThreading) {
		q.thread(pri)
		l.state.Store(slThreaded)
	}
}

// InsertBatch fills each distinct priority's bin under one bin lock hold
// and threads its link once, instead of one lock round trip per item.
func (q *skipList[V]) InsertBatch(items []Item[V]) {
	for _, run := range groupByPri(items, q.npri) {
		q.links[run.pri].bin.insertN(run.vals)
		q.ensureThreaded(run.pri)
	}
}

// lockPred locks the predecessor of key at level lev and returns it
// (-1 = head) together with its successor pointer.
func (q *skipList[V]) lockPred(pred, key, lev int) (int, int32) {
	for {
		var (
			mu  *sync.Mutex
			fwd *atomic.Int32
		)
		if pred < 0 {
			mu, fwd = &q.headMu, &q.headFwd[lev]
		} else {
			mu, fwd = &q.links[pred].mu, &q.links[pred].fwd[lev]
		}
		mu.Lock()
		if pred >= 0 {
			if st := q.links[pred].state.Load(); st != slThreaded {
				mu.Unlock()
				// Transient predecessors settle shortly; unthreaded ones
				// are simply gone. Either way restart from the head.
				if st == slThreading || st == slUnlinking {
					runtime.Gosched()
				}
				pred = -1
				continue
			}
		}
		succ := fwd.Load()
		if succ != 0 && int(succ-1) < key {
			mu.Unlock()
			pred = int(succ - 1)
			continue
		}
		return pred, succ
	}
}

func (q *skipList[V]) unlockPred(pred int) {
	if pred < 0 {
		q.headMu.Unlock()
	} else {
		q.links[pred].mu.Unlock()
	}
}

// thread links the claimed link for key into the list bottom-up.
func (q *skipList[V]) thread(key int) {
	l := &q.links[key]
	update := make([]int, q.maxLevel)
	pred := -1
	for lev := q.maxLevel - 1; lev >= 0; lev-- {
		for {
			var succ int32
			if pred < 0 {
				succ = q.headFwd[lev].Load()
			} else {
				succ = q.links[pred].fwd[lev].Load()
			}
			if succ == 0 || int(succ-1) >= key {
				break
			}
			pred = int(succ - 1)
		}
		update[lev] = pred
	}
	for lev := 0; lev < l.level; lev++ {
		lockedPred, succ := q.lockPred(update[lev], key, lev)
		l.fwd[lev].Store(succ)
		if lockedPred < 0 {
			q.headFwd[lev].Store(int32(key) + 1)
		} else {
			q.links[lockedPred].fwd[lev].Store(int32(key) + 1)
		}
		q.unlockPred(lockedPred)
	}
}

// unthread removes the link for key (state slUnlinking) from every level,
// re-finding the predecessor per level under locks.
func (q *skipList[V]) unthread(key int) {
	l := &q.links[key]
	for lev := l.level - 1; lev >= 0; lev-- {
		pred := -1
		for {
			var (
				mu  *sync.Mutex
				fwd *atomic.Int32
			)
			if pred < 0 {
				mu, fwd = &q.headMu, &q.headFwd[lev]
			} else {
				mu, fwd = &q.links[pred].mu, &q.links[pred].fwd[lev]
			}
			mu.Lock()
			succ := fwd.Load()
			if succ == int32(key)+1 {
				// Lock the link itself (predecessor first — key order)
				// before reading its forward pointer: a threader holding
				// the link's lock may be concurrently linking a new node
				// behind it, and a stale read here would splice that node
				// out of the level.
				l.mu.Lock()
				fwd.Store(l.fwd[lev].Load())
				l.mu.Unlock()
				mu.Unlock()
				break
			}
			mu.Unlock()
			if succ != 0 && int(succ-1) < key {
				pred = int(succ - 1)
				continue
			}
			break // not linked at this level
		}
	}
}

func (q *skipList[V]) DeleteMin() (V, bool) {
	var zero V
	for {
		db := q.delBin.Load()
		if db != 0 {
			if e, ok := q.links[db-1].bin.delete(); ok {
				return e, true
			}
		}
		if q.delMu.TryLock() {
			// Re-validate under the lock: another deleter may have already
			// repointed the delete bin, or an insert may have refilled the
			// current one. Moving the delete bin away from a non-empty bin
			// would strand its items.
			if cur := q.delBin.Load(); cur != db || (cur != 0 && !q.links[cur-1].bin.empty()) {
				q.delMu.Unlock()
				continue
			}
			first := q.headFwd[0].Load()
			if first == 0 {
				q.delMu.Unlock()
				// Nothing threaded and the delete bin is empty.
				return zero, false
			}
			key := int(first - 1)
			if !q.links[key].state.CompareAndSwap(slThreaded, slUnlinking) {
				q.delMu.Unlock()
				runtime.Gosched()
				continue
			}
			q.unthread(key)
			q.delBin.Store(int32(key) + 1)
			q.links[key].state.Store(slUnthreaded)
			q.delMu.Unlock()
			continue
		}
		// Someone else is refilling; only the lock holder may conclude
		// emptiness (mid-refill the head is transiently nil while the
		// delete bin is not yet published).
		runtime.Gosched()
	}
}

// DeleteMinBatch drains the delete bin with one lock hold per refill
// instead of one per item: the delete-bin pointer is the resumable cursor
// — each pass drains what the current bin holds, and the refill protocol
// advances it exactly as for single deletes. A short batch is returned as
// soon as the refill path is contended, rather than spinning while
// holding items.
func (q *skipList[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	var out []Item[V]
	for len(out) < k {
		db := q.delBin.Load()
		if db != 0 {
			vals := q.links[db-1].bin.deleteN(k - len(out))
			for _, v := range vals {
				out = append(out, Item[V]{Pri: int(db - 1), Val: v})
			}
			if len(out) == k {
				break
			}
		}
		if q.delMu.TryLock() {
			// Same re-validation as DeleteMin: moving the delete bin away
			// from a non-empty bin would strand its items.
			if cur := q.delBin.Load(); cur != db || (cur != 0 && !q.links[cur-1].bin.empty()) {
				q.delMu.Unlock()
				continue
			}
			first := q.headFwd[0].Load()
			if first == 0 {
				q.delMu.Unlock()
				break // nothing threaded and the delete bin is empty
			}
			key := int(first - 1)
			if !q.links[key].state.CompareAndSwap(slThreaded, slUnlinking) {
				q.delMu.Unlock()
				if len(out) > 0 {
					break
				}
				runtime.Gosched()
				continue
			}
			q.unthread(key)
			q.delBin.Store(int32(key) + 1)
			q.links[key].state.Store(slUnthreaded)
			q.delMu.Unlock()
			continue
		}
		if len(out) > 0 {
			break
		}
		runtime.Gosched()
	}
	return out
}
