package core

import (
	"testing"

	"pq/internal/refpq"
)

// runDifferentialTape decodes a fuzz byte tape into a mixed
// single/batch operation stream and plays it through every algorithm
// against the reference oracle. Byte 0 picks the priority range; each
// following byte is one operation: the low two bits select the kind
// (single insert, batch insert, single delete, batch delete) and the
// high bits the priority or batch size. The stack-binned queues must
// match the oracle value-for-value; the heaps must match its priorities
// (sequentially they always pop the true minimum); the skip list — whose
// delete bin serves one stale priority level — must match ok-results and
// conserve values.
func runDifferentialTape(t *testing.T, data []byte) {
	if len(data) < 2 {
		return
	}
	npri := int(data[0]%16) + 1
	tape := data[1:]
	for _, alg := range Algorithms {
		exact := false
		for _, e := range exactSequentialMatch {
			if alg == e {
				exact = true
			}
		}
		q, err := New[uint64](alg, Config{Priorities: npri, Concurrency: 2})
		if err != nil {
			t.Fatal(err)
		}
		bq, ok := q.(BatchQueue[uint64])
		if !ok {
			t.Fatalf("%s does not implement BatchQueue", alg)
		}
		ref := refpq.New(npri)
		outstanding := map[uint64]bool{}
		seq := 0
		mkVal := func(pri int) uint64 {
			v := uint64(seq)<<8 | uint64(pri)
			seq++
			outstanding[v] = true
			return v
		}
		check := func(i int, it Item[uint64], want refpq.Item) {
			t.Helper()
			if !outstanding[it.Val] {
				t.Fatalf("%s op %d: returned %+v which is not outstanding", alg, i, it)
			}
			delete(outstanding, it.Val)
			if it.Pri != int(it.Val&0xff) {
				t.Fatalf("%s op %d: item %+v reports wrong priority", alg, i, it)
			}
			if exact && (it.Val != want.Val || it.Pri != want.Pri) {
				t.Fatalf("%s op %d: got %+v, want %+v", alg, i, it, want)
			}
			if alg != SkipList && it.Pri != want.Pri {
				t.Fatalf("%s op %d: priority %d, want %d", alg, i, it.Pri, want.Pri)
			}
		}
		for i, b := range tape {
			switch b & 3 {
			case 0: // single insert
				pri := int(b>>2) % npri
				v := mkVal(pri)
				q.Insert(pri, v)
				ref.Insert(pri, v)
			case 1: // batch insert
				n := int(b>>2)%8 + 1
				items := make([]Item[uint64], n)
				refItems := make([]refpq.Item, n)
				for j := range items {
					pri := (int(b>>2) + j*3) % npri
					v := mkVal(pri)
					items[j] = Item[uint64]{Pri: pri, Val: v}
					refItems[j] = refpq.Item{Pri: pri, Val: v}
				}
				bq.InsertBatch(items)
				ref.InsertBatch(refItems)
			case 2: // single delete
				gv, gok := q.DeleteMin()
				wv, wok := ref.DeleteMin()
				if gok != wok {
					t.Fatalf("%s op %d: ok %v, want %v", alg, i, gok, wok)
				}
				if gok {
					check(i, Item[uint64]{Pri: int(gv & 0xff), Val: gv}, refpq.Item{Pri: int(wv & 0xff), Val: wv})
				}
			case 3: // batch delete
				k := int(b>>2)%8 + 1
				got := bq.DeleteMinBatch(k)
				want := ref.DeleteMinBatch(k)
				if len(got) != len(want) {
					t.Fatalf("%s op %d: batch returned %d items, want %d", alg, i, len(got), len(want))
				}
				for j := range got {
					check(i, got[j], want[j])
				}
			}
		}
		got := bq.DeleteMinBatch(ref.Len() + 1)
		want := ref.DeleteMinBatch(ref.Len() + 1)
		if len(got) != len(want) {
			t.Fatalf("%s drain: %d items, want %d", alg, len(got), len(want))
		}
		for j := range got {
			check(len(tape), got[j], want[j])
		}
		if len(outstanding) != 0 {
			t.Fatalf("%s: %d values lost", alg, len(outstanding))
		}
	}
	runRelaxedTape(t, data)
}

// runRelaxedTape plays the same tape through MultiQueue against the
// rank-aware relaxed oracle. A relaxed pop need not return the minimum,
// so instead of value-for-value matching the oracle checks conservation
// (each pop removes exactly one still-queued item via refpq.Remove),
// emptiness (a pop fails only when the oracle is empty — exact
// sequentially thanks to the full scan), and, for the unbuffered
// config, that the queue's internal rank accounting agrees with
// refpq.Rank at every pop.
func runRelaxedTape(t *testing.T, data []byte) {
	if len(data) < 2 {
		return
	}
	npri := int(data[0]%16) + 1
	tape := data[1:]
	configs := []Config{
		{Priorities: npri, Concurrency: 2},
		{Priorities: npri, Concurrency: 2, MultiQueueC: 4, MultiQueueSticky: 4, MultiQueuePopBatch: 3},
	}
	for ci, cfg := range configs {
		// Rank accounting fires when an item leaves its sub-heap; with
		// deletion buffering that moment precedes delivery, so the oracle
		// cross-check only applies to the unbuffered config.
		checkRank := cfg.MultiQueuePopBatch <= 1
		q, err := New[uint64](MultiQueue, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bq := q.(BatchQueue[uint64])
		ref := refpq.New(npri)
		seq := 0
		wantRankSum := int64(0)
		mkVal := func(pri int) uint64 {
			v := uint64(seq)<<8 | uint64(pri)
			seq++
			return v
		}
		take := func(i int, it Item[uint64]) {
			t.Helper()
			if it.Pri != int(it.Val&0xff) {
				t.Fatalf("multiqueue/%d op %d: item %+v reports wrong priority", ci, i, it)
			}
			if checkRank {
				wantRankSum += int64(ref.Rank(it.Pri))
			}
			if !ref.Remove(it.Pri, it.Val) {
				t.Fatalf("multiqueue/%d op %d: returned %+v which the oracle does not hold", ci, i, it)
			}
		}
		for i, b := range tape {
			switch b & 3 {
			case 0:
				pri := int(b>>2) % npri
				v := mkVal(pri)
				q.Insert(pri, v)
				ref.Insert(pri, v)
			case 1:
				n := int(b>>2)%8 + 1
				items := make([]Item[uint64], n)
				for j := range items {
					pri := (int(b>>2) + j*3) % npri
					v := mkVal(pri)
					items[j] = Item[uint64]{Pri: pri, Val: v}
					ref.Insert(pri, v)
				}
				bq.InsertBatch(items)
			case 2:
				gv, gok := q.DeleteMin()
				if gok != (ref.Len() > 0) {
					t.Fatalf("multiqueue/%d op %d: ok %v with %d items queued", ci, i, gok, ref.Len())
				}
				if gok {
					take(i, Item[uint64]{Pri: int(gv & 0xff), Val: gv})
				}
			case 3:
				k := int(b>>2)%8 + 1
				want := ref.Len()
				if want > k {
					want = k
				}
				got := bq.DeleteMinBatch(k)
				if len(got) != want {
					t.Fatalf("multiqueue/%d op %d: batch returned %d items, want %d", ci, i, len(got), want)
				}
				for _, it := range got {
					take(i, it)
				}
			}
		}
		got := bq.DeleteMinBatch(ref.Len() + 1)
		if len(got) != ref.Len() {
			t.Fatalf("multiqueue/%d drain: %d items, want %d", ci, len(got), ref.Len())
		}
		for _, it := range got {
			take(len(tape), it)
		}
		if ref.Len() != 0 {
			t.Fatalf("multiqueue/%d: %d values lost", ci, ref.Len())
		}
		rs := q.(RelaxedQueue).RelaxStats()
		if !rs.Tracked {
			t.Fatalf("multiqueue/%d: rank accounting off for %d priorities", ci, npri)
		}
		if int(rs.Pops) != seq {
			t.Fatalf("multiqueue/%d: accounted %d pops, want %d", ci, rs.Pops, seq)
		}
		if checkRank && rs.RankSum != wantRankSum {
			t.Fatalf("multiqueue/%d: accounted rank sum %d, oracle says %d", ci, rs.RankSum, wantRankSum)
		}
	}
}

// FuzzDifferential feeds randomized operation tapes through every
// algorithm against the refpq oracle; see runDifferentialTape for the
// encoding. The seed corpus lives in testdata/fuzz/FuzzDifferential and
// runs as regular unit tests when not fuzzing.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{7, 0, 4, 8, 2, 1, 3, 2, 3})
	f.Add([]byte{3, 0, 0, 0, 3, 3, 3, 2, 2, 2})
	f.Add([]byte{15, 1, 5, 9, 13, 3, 7, 11, 15, 2, 0, 3})
	f.Add([]byte{0, 29, 3})
	f.Add([]byte{11, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	// MultiQueue-targeted seeds: an all-ties tape (one priority) and a
	// scan-heavy tape mixing empty deletes with scattered inserts.
	f.Add([]byte{0, 0, 4, 8, 12, 16, 20, 24, 28, 5, 2, 2, 2, 2, 2, 2, 15, 3})
	f.Add([]byte{15, 2, 3, 0, 60, 2, 2, 2, 17, 31, 11, 3, 3, 2})
	f.Fuzz(runDifferentialTape)
}
