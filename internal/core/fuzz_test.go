package core

import (
	"testing"

	"pq/internal/refpq"
)

// runDifferentialTape decodes a fuzz byte tape into a mixed
// single/batch operation stream and plays it through every algorithm
// against the reference oracle. Byte 0 picks the priority range; each
// following byte is one operation: the low two bits select the kind
// (single insert, batch insert, single delete, batch delete) and the
// high bits the priority or batch size. The stack-binned queues must
// match the oracle value-for-value; the heaps must match its priorities
// (sequentially they always pop the true minimum); the skip list — whose
// delete bin serves one stale priority level — must match ok-results and
// conserve values.
func runDifferentialTape(t *testing.T, data []byte) {
	if len(data) < 2 {
		return
	}
	npri := int(data[0]%16) + 1
	tape := data[1:]
	for _, alg := range Algorithms {
		exact := false
		for _, e := range exactSequentialMatch {
			if alg == e {
				exact = true
			}
		}
		q, err := New[uint64](alg, Config{Priorities: npri, Concurrency: 2})
		if err != nil {
			t.Fatal(err)
		}
		bq, ok := q.(BatchQueue[uint64])
		if !ok {
			t.Fatalf("%s does not implement BatchQueue", alg)
		}
		ref := refpq.New(npri)
		outstanding := map[uint64]bool{}
		seq := 0
		mkVal := func(pri int) uint64 {
			v := uint64(seq)<<8 | uint64(pri)
			seq++
			outstanding[v] = true
			return v
		}
		check := func(i int, it Item[uint64], want refpq.Item) {
			t.Helper()
			if !outstanding[it.Val] {
				t.Fatalf("%s op %d: returned %+v which is not outstanding", alg, i, it)
			}
			delete(outstanding, it.Val)
			if it.Pri != int(it.Val&0xff) {
				t.Fatalf("%s op %d: item %+v reports wrong priority", alg, i, it)
			}
			if exact && (it.Val != want.Val || it.Pri != want.Pri) {
				t.Fatalf("%s op %d: got %+v, want %+v", alg, i, it, want)
			}
			if alg != SkipList && it.Pri != want.Pri {
				t.Fatalf("%s op %d: priority %d, want %d", alg, i, it.Pri, want.Pri)
			}
		}
		for i, b := range tape {
			switch b & 3 {
			case 0: // single insert
				pri := int(b>>2) % npri
				v := mkVal(pri)
				q.Insert(pri, v)
				ref.Insert(pri, v)
			case 1: // batch insert
				n := int(b>>2)%8 + 1
				items := make([]Item[uint64], n)
				refItems := make([]refpq.Item, n)
				for j := range items {
					pri := (int(b>>2) + j*3) % npri
					v := mkVal(pri)
					items[j] = Item[uint64]{Pri: pri, Val: v}
					refItems[j] = refpq.Item{Pri: pri, Val: v}
				}
				bq.InsertBatch(items)
				ref.InsertBatch(refItems)
			case 2: // single delete
				gv, gok := q.DeleteMin()
				wv, wok := ref.DeleteMin()
				if gok != wok {
					t.Fatalf("%s op %d: ok %v, want %v", alg, i, gok, wok)
				}
				if gok {
					check(i, Item[uint64]{Pri: int(gv & 0xff), Val: gv}, refpq.Item{Pri: int(wv & 0xff), Val: wv})
				}
			case 3: // batch delete
				k := int(b>>2)%8 + 1
				got := bq.DeleteMinBatch(k)
				want := ref.DeleteMinBatch(k)
				if len(got) != len(want) {
					t.Fatalf("%s op %d: batch returned %d items, want %d", alg, i, len(got), len(want))
				}
				for j := range got {
					check(i, got[j], want[j])
				}
			}
		}
		got := bq.DeleteMinBatch(ref.Len() + 1)
		want := ref.DeleteMinBatch(ref.Len() + 1)
		if len(got) != len(want) {
			t.Fatalf("%s drain: %d items, want %d", alg, len(got), len(want))
		}
		for j := range got {
			check(len(tape), got[j], want[j])
		}
		if len(outstanding) != 0 {
			t.Fatalf("%s: %d values lost", alg, len(outstanding))
		}
	}
}

// FuzzDifferential feeds randomized operation tapes through every
// algorithm against the refpq oracle; see runDifferentialTape for the
// encoding. The seed corpus lives in testdata/fuzz/FuzzDifferential and
// runs as regular unit tests when not fuzzing.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{7, 0, 4, 8, 2, 1, 3, 2, 3})
	f.Add([]byte{3, 0, 0, 0, 3, 3, 3, 2, 2, 2})
	f.Add([]byte{15, 1, 5, 9, 13, 3, 7, 11, 15, 2, 0, 3})
	f.Add([]byte{0, 29, 3})
	f.Add([]byte{11, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(runDifferentialTape)
}
