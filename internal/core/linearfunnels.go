package core

import (
	"runtime"

	"pq/internal/funnel"
)

func funnelParamsFor(cfg Config) funnel.Params {
	if cfg.FunnelParams != nil {
		return *cfg.FunnelParams
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	return funnel.DefaultParams(conc)
}

// linearFunnels is the paper's first new algorithm: the bin array of
// SimpleLinear with combining-funnel stacks as bins. The delete-min scan
// still tests emptiness with one atomic read per bin before paying for a
// funnel traversal.
type linearFunnels[V any] struct {
	bins []*funnel.Stack[V]
}

// NewLinearFunnels builds the funnel-stack array queue. With
// Config.FIFOBins it uses the Section 3.2 hybrid: elimination in the
// funnel, FIFO order in the central storage.
func NewLinearFunnels[V any](cfg Config) Queue[V] {
	params := funnelParamsFor(cfg)
	q := &linearFunnels[V]{bins: make([]*funnel.Stack[V], cfg.Priorities)}
	for i := range q.bins {
		q.bins[i] = newFunnelBin[V](params, cfg.FIFOBins)
	}
	return q
}

// newFunnelBin builds one funnel bin with the configured discipline.
func newFunnelBin[V any](params funnel.Params, fifo bool) *funnel.Stack[V] {
	if fifo {
		return funnel.NewFIFOStack[V](params)
	}
	return funnel.NewStack[V](params)
}

func (q *linearFunnels[V]) NumPriorities() int { return len(q.bins) }

func (q *linearFunnels[V]) Insert(pri int, v V) {
	checkPri(pri, len(q.bins))
	q.bins[pri].Push(v)
}

func (q *linearFunnels[V]) DeleteMin() (V, bool) {
	for _, b := range q.bins {
		if b.Empty() {
			continue
		}
		if e, ok := b.Pop(); ok {
			return e, true
		}
	}
	var zero V
	return zero, false
}

// InsertBatch pushes each priority's run with one central stack
// application instead of one funnel traversal per item.
func (q *linearFunnels[V]) InsertBatch(items []Item[V]) {
	for _, run := range groupByPri(items, len(q.bins)) {
		q.bins[run.pri].PushN(run.vals)
	}
}

// DeleteMinBatch runs the scan once, draining each non-empty bin with one
// central application until k items are gathered.
func (q *linearFunnels[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	var out []Item[V]
	for i, b := range q.bins {
		if len(out) == k {
			break
		}
		if b.Empty() {
			continue
		}
		for _, v := range b.PopN(k - len(out)) {
			out = append(out, Item[V]{Pri: i, Val: v})
		}
	}
	return out
}
