package core

import (
	"sync"
	"testing"
)

func newHunt(t *testing.T, npri int) Queue[uint64] {
	t.Helper()
	q, err := New[uint64](HuntEtAl, Config{Priorities: npri})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestHuntGrowsAcrossPages(t *testing.T) {
	// More items than one node page (256) forces page-table growth while
	// the heap is live.
	q := newHunt(t, 8)
	const items = 3000
	for i := 0; i < items; i++ {
		q.Insert(i%8, uint64(i)|1<<40)
	}
	n := 0
	prev := -1
	for {
		v, ok := q.DeleteMin()
		if !ok {
			break
		}
		_ = v
		n++
		_ = prev
	}
	if n != items {
		t.Fatalf("drained %d, want %d", n, items)
	}
}

func TestHuntConcurrentGrowth(t *testing.T) {
	// Concurrent inserts racing through page-boundary growth; node
	// addresses must stay stable under the readers' feet.
	q := newHunt(t, 16)
	const goroutines = 8
	const perG = 600
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q.Insert((i+g)%16, uint64(g)<<32|uint64(i)|1<<50)
			}
		}()
	}
	wg.Wait()
	n := 0
	for {
		if _, ok := q.DeleteMin(); !ok {
			break
		}
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("drained %d, want %d", n, goroutines*perG)
	}
}

func TestHuntAdoptionUnderRace(t *testing.T) {
	// Deleters constantly adopt in-flight insertions: mixed ops on a tiny
	// priority range keep the root hot. Multiset exactness must hold.
	q := newHunt(t, 2)
	const goroutines = 10
	const perG = 400
	var (
		wg       sync.WaitGroup
		inserted [goroutines]int
		removed  [goroutines]int
	)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					q.Insert(i%2, uint64(g)<<32|uint64(i)|1<<50)
					inserted[g]++
				} else if _, ok := q.DeleteMin(); ok {
					removed[g]++
				}
			}
		}()
	}
	wg.Wait()
	ins, rem := 0, 0
	for g := 0; g < goroutines; g++ {
		ins += inserted[g]
		rem += removed[g]
	}
	for {
		if _, ok := q.DeleteMin(); !ok {
			break
		}
		rem++
	}
	if ins != rem {
		t.Fatalf("inserted %d, recovered %d", ins, rem)
	}
}

func TestHuntSequentialStrictOrder(t *testing.T) {
	// Without concurrency the variant behaves exactly like a binary heap.
	q := newHunt(t, 64)
	pris := []int{33, 7, 0, 63, 7, 12, 1, 42, 0}
	for i, p := range pris {
		q.Insert(p, uint64(p)<<8|uint64(i))
	}
	prev := -1
	for {
		v, ok := q.DeleteMin()
		if !ok {
			break
		}
		got := int(v >> 8)
		if got < prev {
			t.Fatalf("out of order: %d after %d", got, prev)
		}
		prev = got
	}
}
