package core

import (
	"sync"
	"sync/atomic"

	"pq/internal/mcs"
)

// binLike abstracts the two bin disciplines SimpleLinear and SimpleTree
// can use: the paper's default LIFO bag, or the FIFO alternative it
// suggests for applications where stack-order unfairness matters
// (Section 3.2).
type binLike[V any] interface {
	insert(e V)
	insertN(es []V)
	empty() bool
	delete() (V, bool)
	deleteN(k int) []V
}

// bin is the paper's Figure-1 bag: a locked slice plus an atomic size so
// the emptiness test stays a single read with no lock. The lock is the
// MCS queue lock, matching the paper's "list of bins using MCS locks".
type bin[V any] struct {
	lock  mcs.Lock
	size  atomic.Int64
	items []V
}

// insert adds e to the bin.
func (b *bin[V]) insert(e V) {
	n := b.lock.Acquire()
	b.items = append(b.items, e)
	b.size.Store(int64(len(b.items)))
	b.lock.Release(n)
}

// insertN adds every element of es under one lock hold.
func (b *bin[V]) insertN(es []V) {
	if len(es) == 0 {
		return
	}
	n := b.lock.Acquire()
	b.items = append(b.items, es...)
	b.size.Store(int64(len(b.items)))
	b.lock.Release(n)
}

// empty reports whether the bin currently looks empty (one atomic read).
func (b *bin[V]) empty() bool { return b.size.Load() == 0 }

// deleteN removes up to k elements under one lock hold, in the order k
// sequential deletes would have returned them (newest first).
func (b *bin[V]) deleteN(k int) []V {
	n := b.lock.Acquire()
	avail := k
	if avail > len(b.items) {
		avail = len(b.items)
	}
	out := make([]V, avail)
	var zero V
	tail := b.items[len(b.items)-avail:]
	for i := 0; i < avail; i++ {
		out[i] = tail[avail-1-i]
	}
	for i := range tail {
		tail[i] = zero // release references for GC
	}
	b.items = b.items[:len(b.items)-avail]
	b.size.Store(int64(len(b.items)))
	b.lock.Release(n)
	return out
}

// delete removes and returns an unspecified element, or ok=false if the
// bin is empty.
func (b *bin[V]) delete() (V, bool) {
	n := b.lock.Acquire()
	if len(b.items) == 0 {
		b.lock.Release(n)
		var zero V
		return zero, false
	}
	last := len(b.items) - 1
	e := b.items[last]
	var zero V
	b.items[last] = zero
	b.items = b.items[:last]
	b.size.Store(int64(last))
	b.lock.Release(n)
	return e, true
}

// fifoBin is the FIFO-discipline alternative bin the paper suggests for
// applications where the stack bins' unfairness matters (Section 3.2).
type fifoBin[V any] struct {
	mu    sync.Mutex
	size  atomic.Int64
	items []V
	head  int
}

func (b *fifoBin[V]) insert(e V) {
	b.mu.Lock()
	b.items = append(b.items, e)
	b.size.Store(int64(len(b.items) - b.head))
	b.mu.Unlock()
}

func (b *fifoBin[V]) insertN(es []V) {
	if len(es) == 0 {
		return
	}
	b.mu.Lock()
	b.items = append(b.items, es...)
	b.size.Store(int64(len(b.items) - b.head))
	b.mu.Unlock()
}

func (b *fifoBin[V]) empty() bool { return b.size.Load() == 0 }

func (b *fifoBin[V]) deleteN(k int) []V {
	b.mu.Lock()
	defer b.mu.Unlock()
	avail := len(b.items) - b.head
	if avail > k {
		avail = k
	}
	out := make([]V, avail)
	copy(out, b.items[b.head:b.head+avail])
	var zero V
	for i := b.head; i < b.head+avail; i++ {
		b.items[i] = zero
	}
	b.head += avail
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
	}
	b.size.Store(int64(len(b.items) - b.head))
	return out
}

func (b *fifoBin[V]) delete() (V, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var zero V
	if b.head == len(b.items) {
		return zero, false
	}
	e := b.items[b.head]
	b.items[b.head] = zero
	b.head++
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
	}
	b.size.Store(int64(len(b.items) - b.head))
	return e, true
}
