package core

import "sort"

// Item pairs a priority with a value — the unit of batch operations.
type Item[V any] struct {
	Pri int
	Val V
}

// BatchQueue extends Queue with native batch operations that amortize
// synchronization over many items: one lock hold, funnel traversal, or
// counter RMW covers the whole batch instead of one per item. Every queue
// built by New implements it.
type BatchQueue[V any] interface {
	Queue[V]
	// InsertBatch adds every item. It panics if any priority is out of
	// range (checked before anything is inserted). Linearizable queues
	// apply the batch as one contiguous sequence of inserts; the
	// quiescently consistent queues give the batch their usual guarantee,
	// one insert per item.
	InsertBatch(items []Item[V])
	// DeleteMinBatch removes up to k items, returned in the order k
	// sequential DeleteMin calls would have yielded them (nondecreasing
	// priority at quiescence). Fewer than k items — including none — means
	// the queue ran dry, or appeared to under contention, partway through.
	DeleteMinBatch(k int) []Item[V]
}

// All seven algorithms carry native batch fast paths.
var (
	_ BatchQueue[int] = (*singleLock[int])(nil)
	_ BatchQueue[int] = (*hunt[int])(nil)
	_ BatchQueue[int] = (*skipList[int])(nil)
	_ BatchQueue[int] = (*simpleLinear[int])(nil)
	_ BatchQueue[int] = (*simpleTree[int])(nil)
	_ BatchQueue[int] = (*linearFunnels[int])(nil)
	_ BatchQueue[int] = (*funnelTree[int])(nil)
)

// priRun is a maximal run of batch values sharing one priority.
type priRun[V any] struct {
	pri  int
	vals []V
}

// groupByPri validates every priority up front (so a panic cannot leave a
// batch half-inserted) and groups the items into per-priority runs in
// ascending priority order. Values are copied; the caller's slice is not
// retained.
func groupByPri[V any](items []Item[V], npri int) []priRun[V] {
	for _, it := range items {
		checkPri(it.Pri, npri)
	}
	if len(items) == 0 {
		return nil
	}
	sorted := make([]Item[V], len(items))
	copy(sorted, items)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Pri < sorted[j].Pri })
	runs := make([]priRun[V], 0, 1)
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Pri == sorted[i].Pri {
			j++
		}
		vals := make([]V, j-i)
		for k, it := range sorted[i:j] {
			vals[k] = it.Val
		}
		runs = append(runs, priRun[V]{pri: sorted[i].Pri, vals: vals})
		i = j
	}
	return runs
}
