package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pq/internal/refpq"
)

// exactSequentialMatch lists the implementations whose sequential
// behaviour must match the reference value-for-value: their bins are
// stacks (or FIFO queues in FIFO mode), so even equal-priority order is
// determined. The heaps order equal priorities arbitrarily and the skip
// list's delete-bin serves one stale priority level; those are checked
// for multiset + priority order elsewhere.
var exactSequentialMatch = []Algorithm{SimpleLinear, SimpleTree, LinearFunnels, FunnelTree}

// TestDifferentialSequential quick-checks every stack-binned queue
// against the reference on random operation streams.
func TestDifferentialSequential(t *testing.T) {
	for _, alg := range exactSequentialMatch {
		alg := alg
		for _, fifo := range []bool{false, true} {
			fifo := fifo
			name := string(alg)
			if fifo {
				name += "/fifo"
			}
			t.Run(name, func(t *testing.T) {
				f := func(seed int64, nPriRaw uint8) bool {
					npri := int(nPriRaw%16) + 1
					q, err := New[uint64](alg, Config{Priorities: npri, Concurrency: 2, FIFOBins: fifo})
					if err != nil {
						t.Fatal(err)
					}
					var ref *refpq.Queue
					if fifo {
						ref = refpq.NewFIFO(npri)
					} else {
						ref = refpq.New(npri)
					}
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 300; i++ {
						if rng.Intn(5) < 3 {
							pri := rng.Intn(npri)
							v := uint64(i)<<8 | uint64(pri)
							q.Insert(pri, v)
							ref.Insert(pri, v)
						} else {
							gv, gok := q.DeleteMin()
							wv, wok := ref.DeleteMin()
							if gok != wok || (gok && gv != wv) {
								t.Logf("op %d: got (%d,%v), want (%d,%v)", i, gv, gok, wv, wok)
								return false
							}
						}
					}
					// Drain both and compare the tails.
					for {
						gv, gok := q.DeleteMin()
						wv, wok := ref.DeleteMin()
						if gok != wok || (gok && gv != wv) {
							t.Logf("drain: got (%d,%v), want (%d,%v)", gv, gok, wv, wok)
							return false
						}
						if !gok {
							return true
						}
					}
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDifferentialHeapsMultiset checks the remaining implementations for
// priority-level equivalence with the reference (values within a
// priority may permute).
func TestDifferentialHeapsMultiset(t *testing.T) {
	for _, alg := range []Algorithm{SingleLock, HuntEtAl, SkipList} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			f := func(seed int64, nPriRaw uint8) bool {
				npri := int(nPriRaw%16) + 1
				q, err := New[uint64](alg, Config{Priorities: npri, Concurrency: 2})
				if err != nil {
					t.Fatal(err)
				}
				ref := refpq.New(npri)
				rng := rand.New(rand.NewSource(seed))
				pri := func(v uint64) int { return int(v & 0xff) }
				for i := 0; i < 300; i++ {
					if rng.Intn(5) < 3 {
						p := rng.Intn(npri)
						v := uint64(i)<<8 | uint64(p)
						q.Insert(p, v)
						ref.Insert(p, v)
					} else {
						gv, gok := q.DeleteMin()
						wv, wok := ref.DeleteMin()
						if gok != wok {
							t.Logf("op %d: ok mismatch %v vs %v", i, gok, wok)
							return false
						}
						// The skip list may serve a stale (higher) priority
						// level from its delete bin; the heaps must return
						// exactly the minimum level.
						if gok && alg != SkipList && pri(gv) != pri(wv) {
							t.Logf("op %d: pri %d, want %d", i, pri(gv), pri(wv))
							return false
						}
					}
				}
				// Both must hold the same number of items at the end.
				n1, n2 := 0, ref.Len()
				for {
					if _, ok := q.DeleteMin(); !ok {
						break
					}
					n1++
				}
				return n1 == n2
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
