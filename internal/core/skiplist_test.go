package core

import (
	"sync"
	"testing"
)

func newSkip(t *testing.T, npri int) *skipList[uint64] {
	t.Helper()
	q, err := New[uint64](SkipList, Config{Priorities: npri})
	if err != nil {
		t.Fatal(err)
	}
	return q.(*skipList[uint64])
}

func TestSkipListThreadUnthreadCycle(t *testing.T) {
	q := newSkip(t, 8)
	// Repeatedly drain and refill one priority: the link must re-thread
	// cleanly every time.
	for round := 0; round < 20; round++ {
		q.Insert(3, uint64(round))
		v, ok := q.DeleteMin()
		if !ok || v != uint64(round) {
			t.Fatalf("round %d: DeleteMin = (%d,%v)", round, v, ok)
		}
		if _, ok := q.DeleteMin(); ok {
			t.Fatalf("round %d: drained queue not empty", round)
		}
	}
}

func TestSkipListLevel0Integrity(t *testing.T) {
	// After any quiescent point, every threaded link must be reachable at
	// level 0 — the exact invariant the unthread/thread race used to
	// break.
	q := newSkip(t, 16)
	const goroutines = 8
	const perG = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if (i+g)%2 == 0 {
					q.Insert((i*7+g)%16, uint64(g*perG+i)|1<<40)
				} else {
					q.DeleteMin()
				}
			}
		}()
	}
	wg.Wait()

	reachable := map[int]bool{}
	for n := q.headFwd[0].Load(); n != 0; n = q.links[n-1].fwd[0].Load() {
		reachable[int(n-1)] = true
	}
	for i := range q.links {
		if q.links[i].state.Load() == slThreaded && !reachable[i] {
			t.Fatalf("link %d threaded but unreachable at level 0", i)
		}
	}

	// And a full drain must recover everything that's left.
	left := 0
	for {
		if _, ok := q.DeleteMin(); !ok {
			break
		}
		left++
	}
	for i := range q.links {
		if !q.links[i].bin.empty() {
			t.Fatalf("bin %d non-empty after drain", i)
		}
	}
	_ = left
}

func TestSkipListHeavyRethreadChurn(t *testing.T) {
	// A few priorities, many goroutines: maximal thread/unthread traffic,
	// which is where the skip list's state machine earns its keep.
	q := newSkip(t, 3)
	const goroutines = 12
	const perG = 500
	var (
		wg       sync.WaitGroup
		inserted [goroutines]int
		removed  [goroutines]int
	)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					q.Insert(i%3, uint64(g)<<32|uint64(i))
					inserted[g]++
				} else if _, ok := q.DeleteMin(); ok {
					removed[g]++
				}
			}
		}()
	}
	wg.Wait()
	ins, rem := 0, 0
	for g := 0; g < goroutines; g++ {
		ins += inserted[g]
		rem += removed[g]
	}
	for {
		if _, ok := q.DeleteMin(); !ok {
			break
		}
		rem++
	}
	if ins != rem {
		t.Fatalf("inserted %d, recovered %d (items lost or duplicated)", ins, rem)
	}
}
