package core

// simpleLinear is Figure 2: an array of bins, one per priority; delete-min
// scans upward from priority zero, testing emptiness with one read before
// paying for a lock.
type simpleLinear[V any] struct {
	bins []binLike[V]
}

// newBins builds the per-priority bin array with the configured
// discipline.
func newBins[V any](n int, fifo bool) []binLike[V] {
	bins := make([]binLike[V], n)
	for i := range bins {
		if fifo {
			bins[i] = &fifoBin[V]{}
		} else {
			bins[i] = &bin[V]{}
		}
	}
	return bins
}

// NewSimpleLinear builds the bin-array queue.
func NewSimpleLinear[V any](cfg Config) Queue[V] {
	return &simpleLinear[V]{bins: newBins[V](cfg.Priorities, cfg.FIFOBins)}
}

func (q *simpleLinear[V]) NumPriorities() int { return len(q.bins) }

func (q *simpleLinear[V]) Insert(pri int, v V) {
	checkPri(pri, len(q.bins))
	q.bins[pri].insert(v)
}

func (q *simpleLinear[V]) DeleteMin() (V, bool) {
	for i := range q.bins {
		if q.bins[i].empty() {
			continue
		}
		if e, ok := q.bins[i].delete(); ok {
			return e, true
		}
	}
	var zero V
	return zero, false
}

// InsertBatch fills each priority's bin with one lock hold per distinct
// priority in the batch.
func (q *simpleLinear[V]) InsertBatch(items []Item[V]) {
	for _, run := range groupByPri(items, len(q.bins)) {
		q.bins[run.pri].insertN(run.vals)
	}
}

// DeleteMinBatch runs the delete-min scan once, draining each non-empty
// bin it reaches under a single lock hold until k items are gathered.
func (q *simpleLinear[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	var out []Item[V]
	for i := range q.bins {
		if len(out) == k {
			break
		}
		if q.bins[i].empty() {
			continue
		}
		for _, v := range q.bins[i].deleteN(k - len(out)) {
			out = append(out, Item[V]{Pri: i, Val: v})
		}
	}
	return out
}
