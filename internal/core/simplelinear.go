package core

// simpleLinear is Figure 2: an array of bins, one per priority; delete-min
// scans upward from priority zero, testing emptiness with one read before
// paying for a lock.
type simpleLinear[V any] struct {
	bins []binLike[V]
}

// newBins builds the per-priority bin array with the configured
// discipline.
func newBins[V any](n int, fifo bool) []binLike[V] {
	bins := make([]binLike[V], n)
	for i := range bins {
		if fifo {
			bins[i] = &fifoBin[V]{}
		} else {
			bins[i] = &bin[V]{}
		}
	}
	return bins
}

// NewSimpleLinear builds the bin-array queue.
func NewSimpleLinear[V any](cfg Config) Queue[V] {
	return &simpleLinear[V]{bins: newBins[V](cfg.Priorities, cfg.FIFOBins)}
}

func (q *simpleLinear[V]) NumPriorities() int { return len(q.bins) }

func (q *simpleLinear[V]) Insert(pri int, v V) {
	checkPri(pri, len(q.bins))
	q.bins[pri].insert(v)
}

func (q *simpleLinear[V]) DeleteMin() (V, bool) {
	for i := range q.bins {
		if q.bins[i].empty() {
			continue
		}
		if e, ok := q.bins[i].delete(); ok {
			return e, true
		}
	}
	var zero V
	return zero, false
}
