package core

import (
	"sync"
	"testing"

	"pq/internal/funnel"
)

func TestFunnelCutoffVariants(t *testing.T) {
	// Every cutoff must produce a correct queue (funnels everywhere, none,
	// and the default); correctness is cutoff-independent.
	for _, cutoff := range []int{-1, 1, 4, 100} {
		cutoff := cutoff
		q, err := New[int](FunnelTree, Config{Priorities: 32, Concurrency: 4, FunnelCutoff: cutoff})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					q.Insert((i+g)%32, i)
				}
			}()
		}
		wg.Wait()
		n := 0
		prev := -1
		for {
			v, ok := q.DeleteMin()
			if !ok {
				break
			}
			_ = v
			n++
			_ = prev
		}
		if n != 800 {
			t.Fatalf("cutoff %d: drained %d, want 800", cutoff, n)
		}
	}
}

func TestExplicitFunnelParams(t *testing.T) {
	params := funnel.Params{Widths: []int{2, 2}, Attempts: 2, Spin: []int{4, 4}, Adaptive: false}
	for _, alg := range []Algorithm{LinearFunnels, FunnelTree} {
		q, err := New[int](alg, Config{Priorities: 8, FunnelParams: &params})
		if err != nil {
			t.Fatal(err)
		}
		q.Insert(3, 9)
		if v, ok := q.DeleteMin(); !ok || v != 9 {
			t.Fatalf("%s: DeleteMin = (%d,%v)", alg, v, ok)
		}
	}
}

func TestConcurrencyHintIsOnlyAHint(t *testing.T) {
	// A wrong concurrency hint must never affect correctness, only
	// performance: run 16 goroutines against a queue tuned for 2 and vice
	// versa.
	for _, conc := range []int{2, 64} {
		q, err := New[int](FunnelTree, Config{Priorities: 8, Concurrency: conc})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 150; i++ {
					if i%2 == 0 {
						q.Insert((i+g)%8, i)
					} else {
						q.DeleteMin()
					}
				}
			}()
		}
		wg.Wait()
		for {
			if _, ok := q.DeleteMin(); !ok {
				break
			}
		}
	}
}

func TestBoundedCounterAsSemaphore(t *testing.T) {
	// The use case the public docs advertise: a try-acquire semaphore.
	c := funnel.NewCounter(funnel.DefaultParams(4), 3, true, 0)
	var wg sync.WaitGroup
	acquired := make([]int, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.FaD() > 0 {
				acquired[g] = 1
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, a := range acquired {
		total += a
	}
	if total != 3 {
		t.Fatalf("%d acquisitions, want exactly 3", total)
	}
	if c.Value() != 0 {
		t.Fatalf("permits left = %d", c.Value())
	}
}
