// Package core implements, natively on goroutines and atomics, the seven
// bounded-range concurrent priority queues the paper evaluates: the
// SingleLock and Hunt-et-al heaps, the skip-list queue, the simple
// bin-array and counter-tree queues, and the paper's combining-funnel
// queues LinearFunnels and FunnelTree.
package core

import (
	"fmt"
	"strings"

	"pq/internal/funnel"
)

// Queue is a bounded-range priority queue over values of type V:
// priorities are integers in [0, NumPriorities()), smaller is more
// urgent.
type Queue[V any] interface {
	// Insert adds v with the given priority. It panics if pri is out of
	// range (a programming error, like an out-of-range slice index).
	Insert(pri int, v V)
	// DeleteMin removes and returns an element with the smallest
	// priority, or ok=false if the queue appears empty.
	DeleteMin() (v V, ok bool)
	// NumPriorities reports the fixed priority range.
	NumPriorities() int
}

// Algorithm names a queue implementation.
type Algorithm string

// The seven algorithms from the paper.
const (
	SingleLock    Algorithm = "SingleLock"
	HuntEtAl      Algorithm = "HuntEtAl"
	SkipList      Algorithm = "SkipList"
	SimpleLinear  Algorithm = "SimpleLinear"
	SimpleTree    Algorithm = "SimpleTree"
	LinearFunnels Algorithm = "LinearFunnels"
	FunnelTree    Algorithm = "FunnelTree"
)

// MultiQueue is the relaxed queue of Williams & Sanders ("Engineering
// MultiQueues"): c·p sequential heaps, insert into a random (or sticky)
// heap, delete-min pops the better of two random tops. It is not in
// Algorithms: delete-min may overtake better items (bounded expected
// rank error), so callers must opt in explicitly.
const MultiQueue Algorithm = "MultiQueue"

// Algorithms lists the paper's implementations in its order. All of
// them are strict or quiescently consistent; relaxed algorithms are
// listed separately in RelaxedAlgorithms and never selected by default.
var Algorithms = []Algorithm{
	SingleLock, HuntEtAl, SkipList, SimpleLinear, SimpleTree, LinearFunnels, FunnelTree,
}

// RelaxedAlgorithms lists the implementations whose DeleteMin is only
// approximately smallest-first.
var RelaxedAlgorithms = []Algorithm{MultiQueue}

// All lists every implementation: the paper's seven, then the relaxed
// extensions.
func All() []Algorithm {
	out := make([]Algorithm, 0, len(Algorithms)+len(RelaxedAlgorithms))
	out = append(out, Algorithms...)
	return append(out, RelaxedAlgorithms...)
}

// IsRelaxed reports whether alg trades exact delete-min for throughput.
func IsRelaxed(alg Algorithm) bool {
	for _, r := range RelaxedAlgorithms {
		if r == alg {
			return true
		}
	}
	return false
}

// ParseAlgorithm resolves a case-insensitive algorithm name (strict or
// relaxed). The canonical spelling is returned so callers can compare
// against the constants.
func ParseAlgorithm(s string) (Algorithm, bool) {
	for _, a := range All() {
		if strings.EqualFold(s, string(a)) {
			return a, true
		}
	}
	return "", false
}

// Config carries construction options shared by all queues.
type Config struct {
	// Priorities is the fixed priority range N; priorities are 0..N-1.
	Priorities int
	// Concurrency is the expected number of contending goroutines; it
	// sizes funnel layers. Zero means runtime.GOMAXPROCS(0).
	Concurrency int
	// FunnelParams overrides the funnel tuning for the funnel-based
	// queues; nil selects funnel.DefaultParams(Concurrency).
	FunnelParams *funnel.Params
	// FunnelCutoff is how many tree levels from the root use funnel
	// counters in FunnelTree; zero selects the paper's default of 4.
	FunnelCutoff int
	// FIFOBins selects first-in-first-out delivery for items of equal
	// priority — the fairness alternative of the paper's Section 3.2.
	// SimpleLinear and SimpleTree use plain FIFO bins; LinearFunnels and
	// FunnelTree use the hybrid funnel bin (elimination in the funnel,
	// FIFO central storage). MultiQueue ties within one sub-heap follow
	// the same discipline.
	FIFOBins bool
	// MultiQueueC is the MultiQueue over-provisioning factor: the queue
	// keeps C × Concurrency sub-heaps. Zero selects 2, the Williams &
	// Sanders default.
	MultiQueueC int
	// MultiQueueSticky makes MultiQueue reuse its random sub-heap choices
	// for this many consecutive operations per goroutine before re-rolling
	// (0 disables stickiness). Stickiness trades rank error for locality.
	MultiQueueSticky int
	// MultiQueuePopBatch makes MultiQueue DeleteMin refill a per-goroutine
	// deletion buffer of this size from one locked sub-heap (0 or 1
	// disables buffering). Buffered items remain visible to emptiness
	// scans and Drain.
	MultiQueuePopBatch int
	// MultiQueueNoRank disables MultiQueue's rank-error accounting
	// (normally on whenever Priorities is small enough to track), for
	// benchmarking the raw queue.
	MultiQueueNoRank bool
}

// New builds the named queue.
func New[V any](alg Algorithm, cfg Config) (Queue[V], error) {
	if cfg.Priorities < 1 {
		return nil, fmt.Errorf("core: Priorities must be >= 1, got %d", cfg.Priorities)
	}
	switch alg {
	case SingleLock:
		return NewSingleLock[V](cfg), nil
	case HuntEtAl:
		return NewHunt[V](cfg), nil
	case SkipList:
		return NewSkipList[V](cfg), nil
	case SimpleLinear:
		return NewSimpleLinear[V](cfg), nil
	case SimpleTree:
		return NewSimpleTree[V](cfg), nil
	case LinearFunnels:
		return NewLinearFunnels[V](cfg), nil
	case FunnelTree:
		return NewFunnelTree[V](cfg), nil
	case MultiQueue:
		return NewMultiQueue[V](cfg), nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

func checkPri(pri, n int) {
	if pri < 0 || pri >= n {
		panic(fmt.Sprintf("core: priority %d out of range [0,%d)", pri, n))
	}
}

// ceilPow2 returns the smallest power of two >= n (and at least 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
