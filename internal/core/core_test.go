package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"pq/internal/order"
)

func cfg(npri int) Config { return Config{Priorities: npri, Concurrency: 8} }

func build(t *testing.T, alg Algorithm, npri int) Queue[uint64] {
	t.Helper()
	q, err := New[uint64](alg, cfg(npri))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// Value encoding: priority in high bits for order checks.
func enc(pri, g, i int) uint64 { return uint64(pri)<<40 | uint64(g)<<20 | uint64(i) | 1<<55 }
func dec(v uint64) int         { return int(v>>40) & 0x7fff }

// strictDrainOrder mirrors the paper's consistency expectations: the skip
// list serves slightly stale priorities through its delete bin, and the
// Hunt variant can briefly leave a local inversion mid-race.
func strictDrainOrder(alg Algorithm) bool {
	return alg != SkipList && alg != HuntEtAl
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](SimpleLinear, Config{Priorities: 0}); err == nil {
		t.Error("Priorities=0 accepted")
	}
	if _, err := New[int]("bogus", Config{Priorities: 4}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestInsertPanicsOutOfRange(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			q := build(t, alg, 4)
			for _, pri := range []int{-1, 4, 100} {
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("Insert(%d) did not panic", pri)
						}
					}()
					q.Insert(pri, 1)
				}()
			}
		})
	}
}

func TestSequentialFillDrain(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 16
			const items = 500
			q := build(t, alg, npri)
			for i := 0; i < items; i++ {
				pri := i * 7 % npri
				q.Insert(pri, enc(pri, 0, i))
			}
			var pris []int
			for {
				v, ok := q.DeleteMin()
				if !ok {
					break
				}
				pris = append(pris, dec(v))
			}
			if len(pris) != items {
				t.Fatalf("drained %d, want %d", len(pris), items)
			}
			if !sort.IntsAreSorted(pris) {
				t.Fatalf("drain order not sorted")
			}
			if _, ok := q.DeleteMin(); ok {
				t.Fatal("DeleteMin succeeded on drained queue")
			}
		})
	}
}

func TestSequentialInterleavedMinRespect(t *testing.T) {
	for _, alg := range Algorithms {
		if !strictDrainOrder(alg) {
			continue
		}
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 8
			q := build(t, alg, npri)
			live := map[int]int{}
			for i := 0; i < 400; i++ {
				if i%3 != 2 {
					pri := (i * 5) % npri
					q.Insert(pri, enc(pri, 0, i))
					live[pri]++
				} else {
					min := -1
					for p := 0; p < npri; p++ {
						if live[p] > 0 {
							min = p
							break
						}
					}
					v, ok := q.DeleteMin()
					if min == -1 {
						if ok {
							t.Fatalf("delete on empty returned %#x", v)
						}
						continue
					}
					if !ok {
						t.Fatal("delete failed with live items")
					}
					if got := dec(v); got != min {
						t.Fatalf("deleted pri %d, want %d", got, min)
					}
					live[min]--
				}
			}
		})
	}
}

func TestConcurrentMixedThenDrain(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const (
				goroutines = 8
				perG       = 300
				npri       = 8
			)
			q := build(t, alg, npri)
			inserted := make([][]uint64, goroutines)
			deleted := make([][]uint64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if (i+g)%2 == 0 {
							pri := (i*13 + g) % npri
							v := enc(pri, g, i)
							inserted[g] = append(inserted[g], v)
							q.Insert(pri, v)
						} else if v, ok := q.DeleteMin(); ok {
							deleted[g] = append(deleted[g], v)
						}
					}
				}()
			}
			wg.Wait()

			var drained []uint64
			for {
				v, ok := q.DeleteMin()
				if !ok {
					break
				}
				drained = append(drained, v)
			}

			remaining := map[uint64]int{}
			for _, vs := range inserted {
				for _, v := range vs {
					remaining[v]++
				}
			}
			consume := func(v uint64, where string) {
				if remaining[v] == 0 {
					t.Fatalf("%s returned %#x which is not outstanding", where, v)
				}
				remaining[v]--
			}
			for _, vs := range deleted {
				for _, v := range vs {
					consume(v, "concurrent delete")
				}
			}
			for _, v := range drained {
				consume(v, "drain")
			}
			for v, n := range remaining {
				if n != 0 {
					t.Fatalf("value %#x lost (%d unaccounted)", v, n)
				}
			}
			if strictDrainOrder(alg) {
				pris := make([]int, len(drained))
				for i, v := range drained {
					pris[i] = dec(v)
				}
				if !sort.IntsAreSorted(pris) {
					t.Fatalf("post-quiescence drain not sorted: %v", pris)
				}
			}
		})
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	// Dedicated producers and consumers; every produced item must be
	// consumed (consumers retry until the expected total arrives).
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const (
				producers = 4
				consumers = 4
				perP      = 250
				npri      = 16
			)
			q := build(t, alg, npri)
			var wg sync.WaitGroup
			var mu sync.Mutex
			got := map[uint64]bool{}
			var consumed int

			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						mu.Lock()
						if consumed == producers*perP {
							mu.Unlock()
							return
						}
						mu.Unlock()
						if v, ok := q.DeleteMin(); ok {
							mu.Lock()
							if got[v] {
								t.Errorf("duplicate delivery %#x", v)
							}
							got[v] = true
							consumed++
							mu.Unlock()
						}
					}
				}()
			}
			for p := 0; p < producers; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perP; i++ {
						pri := (i + p) % npri
						q.Insert(pri, enc(pri, p, i))
					}
				}()
			}
			wg.Wait()
			if len(got) != producers*perP {
				t.Fatalf("consumed %d distinct items, want %d", len(got), producers*perP)
			}
		})
	}
}

func TestSinglePriorityDegenerate(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			q := build(t, alg, 1)
			q.Insert(0, 7)
			v, ok := q.DeleteMin()
			if !ok || v != 7 {
				t.Fatalf("DeleteMin = (%d,%v), want (7,true)", v, ok)
			}
		})
	}
}

func TestNumPriorities(t *testing.T) {
	for _, alg := range Algorithms {
		q := build(t, alg, 37)
		if got := q.NumPriorities(); got != 37 {
			t.Errorf("%s: NumPriorities = %d, want 37", alg, got)
		}
	}
}

func TestBitRevPosProperties(t *testing.T) {
	// Within each level the mapping must be a bijection onto the level's
	// slot range.
	for level := uint(0); level < 10; level++ {
		lo := uint64(1) << level
		hi := lo * 2
		seen := map[uint64]bool{}
		for k := lo; k < hi; k++ {
			pos := bitRevPos(k)
			if pos < lo || pos >= hi {
				t.Fatalf("bitRevPos(%d) = %d, outside level [%d,%d)", k, pos, lo, hi)
			}
			if seen[pos] {
				t.Fatalf("bitRevPos collision at %d", pos)
			}
			seen[pos] = true
		}
	}
	// Parent of every occupied slot set must be occupied: the slot set of
	// size n must be "heap-closed".
	for n := uint64(1); n <= 1024; n++ {
		occupied := map[uint64]bool{1: true}
		for k := uint64(1); k <= n; k++ {
			occupied[bitRevPos(k)] = true
		}
		for k := uint64(1); k <= n; k++ {
			pos := bitRevPos(k)
			if pos > 1 && !occupied[pos/2] {
				t.Fatalf("n=%d: slot %d occupied but parent %d is not", n, pos, pos/2)
			}
		}
	}
	// Consecutive insertions within a level land in different subtrees
	// (the whole point of bit reversal): positions for k and k+1 at the
	// same level differ in their top offset bit region.
	if bitRevPos(4) == bitRevPos(5) {
		t.Fatal("bit reversal does not scatter")
	}
}

func TestFIFOBin(t *testing.T) {
	var b fifoBin[int]
	if !b.empty() {
		t.Fatal("new fifo bin not empty")
	}
	for i := 1; i <= 5; i++ {
		b.insert(i)
	}
	for i := 1; i <= 5; i++ {
		v, ok := b.delete()
		if !ok || v != i {
			t.Fatalf("delete = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := b.delete(); ok {
		t.Fatal("delete on empty fifo bin succeeded")
	}
}

func TestAtomicCounter(t *testing.T) {
	var c atomicCounter
	if got := c.BFaD(); got != 0 {
		t.Fatalf("BFaD on zero = %d", got)
	}
	if got := c.FaI(); got != 0 {
		t.Fatalf("FaI = %d, want 0", got)
	}
	if got := c.FaI(); got != 1 {
		t.Fatalf("FaI = %d, want 1", got)
	}
	if got := c.BFaD(); got != 2 {
		t.Fatalf("BFaD = %d, want 2", got)
	}
}

func TestFIFOBinDiscipline(t *testing.T) {
	// With FIFO bins, items of equal priority come out in insertion
	// order; with the default LIFO bags they come out reversed.
	for _, alg := range []Algorithm{SimpleLinear, SimpleTree} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			for _, fifo := range []bool{false, true} {
				q, err := New[int](alg, Config{Priorities: 4, FIFOBins: fifo})
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i <= 5; i++ {
					q.Insert(2, i)
				}
				var got []int
				for {
					v, ok := q.DeleteMin()
					if !ok {
						break
					}
					got = append(got, v)
				}
				if len(got) != 5 {
					t.Fatalf("drained %d items", len(got))
				}
				first := got[0]
				if fifo && first != 1 {
					t.Errorf("fifo=%v first=%d, want 1 (order %v)", fifo, first, got)
				}
				if !fifo && first != 5 {
					t.Errorf("fifo=%v first=%d, want 5 (order %v)", fifo, first, got)
				}
			}
		})
	}
}

func TestFIFOBinsConcurrentConservation(t *testing.T) {
	q, err := New[int](SimpleLinear, Config{Priorities: 8, FIFOBins: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines = 6
	const perG = 200
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q.Insert((i+g)%8, g*perG+i)
			}
		}()
	}
	wg.Wait()
	n := 0
	for {
		if _, ok := q.DeleteMin(); !ok {
			break
		}
		n++
	}
	if n != goroutines*perG {
		t.Fatalf("drained %d, want %d", n, goroutines*perG)
	}
}

// TestIntervalOrderLinearizable runs the interval-order checker (package
// order) against concurrent histories of the strictly linearizable
// queues. Any reported violation is a real linearizability bug.
func TestIntervalOrderLinearizable(t *testing.T) {
	for _, alg := range []Algorithm{SingleLock, SimpleLinear} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const (
				goroutines = 6
				perG       = 150
				npri       = 8
			)
			q := build(t, alg, npri)
			base := time.Now()
			clock := func() int64 { return time.Since(base).Nanoseconds() }

			histories := make([][]order.Op, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if (i+g)%2 == 0 {
							pri := (i*11 + g) % npri
							v := enc(pri, g, i)
							start := clock()
							q.Insert(pri, v)
							histories[g] = append(histories[g], order.Op{
								Kind: order.Insert, Pri: pri, Val: v, OK: true,
								Start: start, End: clock(),
							})
						} else {
							start := clock()
							v, ok := q.DeleteMin()
							op := order.Op{Kind: order.DeleteMin, OK: ok, Start: start, End: clock()}
							if ok {
								op.Pri, op.Val = dec(v), v
							}
							histories[g] = append(histories[g], op)
						}
					}
				}()
			}
			wg.Wait()
			var all []order.Op
			for _, h := range histories {
				all = append(all, h...)
			}
			if vs := order.Check(all); len(vs) != 0 {
				for _, v := range vs[:min(len(vs), 5)] {
					t.Error(v)
				}
				t.Fatalf("%d interval-order violations", len(vs))
			}
		})
	}
}

func TestFIFOBinsOnFunnelQueues(t *testing.T) {
	// With FIFOBins, the funnel queues use the hybrid bin: equal-priority
	// items drain in insertion order once quiescent.
	for _, alg := range []Algorithm{LinearFunnels, FunnelTree} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			q, err := New[int](alg, Config{Priorities: 4, FIFOBins: true, Concurrency: 2})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 6; i++ {
				q.Insert(2, i)
			}
			for want := 1; want <= 6; want++ {
				v, ok := q.DeleteMin()
				if !ok || v != want {
					t.Fatalf("DeleteMin = (%d,%v), want (%d,true)", v, ok, want)
				}
			}
		})
	}
}
