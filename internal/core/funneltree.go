package core

import (
	"sort"

	"pq/internal/funnel"
)

// DefaultFunnelCutoff is the number of tree levels (from the root) whose
// counters use combining funnels in FunnelTree, as in the paper ("only
// for counters at the top four levels of the tree"); deeper counters see
// far less traffic and use plain atomic counters.
const DefaultFunnelCutoff = 4

// treeCounter abstracts the two counter kinds FunnelTree mixes. AddN and
// SubN are the multi-unit batch forms: one funnel traversal or RMW for n
// units, with SubN bounded below by zero like BFaD.
type treeCounter interface {
	FaI() int64
	BFaD() int64
	AddN(n int64) int64
	SubN(n int64) int64
}

type funnelTreeCounter struct{ c *funnel.Counter }

func (f funnelTreeCounter) FaI() int64         { return f.c.FaI() }
func (f funnelTreeCounter) BFaD() int64        { return f.c.FaD() }
func (f funnelTreeCounter) AddN(n int64) int64 { return f.c.AddN(n) }
func (f funnelTreeCounter) SubN(n int64) int64 { return f.c.SubN(n) }

// funnelTree is the paper's second new algorithm: the counter tree of
// SimpleTree with combining-funnel counters in the hottest (top) levels
// and funnel stacks as leaf bins.
type funnelTree[V any] struct {
	npri     int
	nleaves  int
	counters []treeCounter // 1-based
	bins     []*funnel.Stack[V]
}

// NewFunnelTree builds the funnel-tree queue.
func NewFunnelTree[V any](cfg Config) Queue[V] {
	params := funnelParamsFor(cfg)
	cutoff := cfg.FunnelCutoff
	if cutoff == 0 {
		cutoff = DefaultFunnelCutoff
	}
	nl := ceilPow2(cfg.Priorities)
	q := &funnelTree[V]{
		npri:     cfg.Priorities,
		nleaves:  nl,
		counters: make([]treeCounter, nl),
		bins:     make([]*funnel.Stack[V], nl),
	}
	for i := 1; i < nl; i++ {
		if treeLevel(i) < cutoff {
			q.counters[i] = funnelTreeCounter{c: funnel.NewCounter(params, 0, true, 0)}
		} else {
			q.counters[i] = &atomicCounter{}
		}
	}
	for i := 0; i < nl; i++ {
		q.bins[i] = newFunnelBin[V](params, cfg.FIFOBins)
	}
	return q
}

// treeLevel returns the level of heap-numbered node i (root = 0).
func treeLevel(i int) int {
	l := -1
	for i > 0 {
		i /= 2
		l++
	}
	return l
}

func (q *funnelTree[V]) NumPriorities() int { return q.npri }

func (q *funnelTree[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	q.bins[pri].Push(v)
	n := q.nleaves + pri
	for n > 1 {
		parent := n / 2
		if n == 2*parent {
			q.counters[parent].FaI()
		}
		n = parent
	}
}

func (q *funnelTree[V]) DeleteMin() (V, bool) {
	n := 1
	for n < q.nleaves {
		if q.counters[n].BFaD() > 0 {
			n = 2 * n
		} else {
			n = 2*n + 1
		}
	}
	return q.bins[n-q.nleaves].Pop()
}

// InsertBatch mirrors simpleTree.InsertBatch: bins fill first, then
// aggregated counter increments apply children-before-parents — each one
// a single AddN funnel traversal instead of len(run) FaI traversals.
func (q *funnelTree[V]) InsertBatch(items []Item[V]) {
	runs := groupByPri(items, q.npri)
	if len(runs) == 0 {
		return
	}
	incs := make(map[int]int64)
	for _, run := range runs {
		q.bins[run.pri].PushN(run.vals)
		n := q.nleaves + run.pri
		for n > 1 {
			parent := n / 2
			if n == 2*parent {
				incs[parent] += int64(len(run.vals))
			}
			n = parent
		}
	}
	nodes := make([]int, 0, len(incs))
	for n := range incs {
		nodes = append(nodes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(nodes)))
	for _, n := range nodes {
		q.counters[n].AddN(incs[n])
	}
}

// DeleteMinBatch descends once with multi-unit bounded decrements, like
// simpleTree's. A left subtree here may under-deliver its reservation —
// elimination can leave counter ghosts, the same relaxation behind this
// queue's occasional spurious-empty DeleteMin — so the shortfall is
// retried on the right best-effort and the books rebalance exactly as
// they do for a failed single delete.
func (q *funnelTree[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	out := make([]Item[V], 0, k)
	q.takeBatch(1, k, &out)
	return out
}

func (q *funnelTree[V]) takeBatch(n, want int, out *[]Item[V]) int {
	if want <= 0 {
		return 0
	}
	if n >= q.nleaves {
		pri := n - q.nleaves
		vals := q.bins[pri].PopN(want)
		for _, v := range vals {
			*out = append(*out, Item[V]{Pri: pri, Val: v})
		}
		return len(vals)
	}
	left := int64(want)
	if prev := q.counters[n].SubN(left); prev < left {
		left = prev
	}
	got := 0
	if left > 0 {
		got = q.takeBatch(2*n, int(left), out)
	}
	if got < want {
		got += q.takeBatch(2*n+1, want-got, out)
	}
	return got
}
