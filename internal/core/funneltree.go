package core

import "pq/internal/funnel"

// DefaultFunnelCutoff is the number of tree levels (from the root) whose
// counters use combining funnels in FunnelTree, as in the paper ("only
// for counters at the top four levels of the tree"); deeper counters see
// far less traffic and use plain atomic counters.
const DefaultFunnelCutoff = 4

// treeCounter abstracts the two counter kinds FunnelTree mixes.
type treeCounter interface {
	FaI() int64
	BFaD() int64
}

type funnelTreeCounter struct{ c *funnel.Counter }

func (f funnelTreeCounter) FaI() int64  { return f.c.FaI() }
func (f funnelTreeCounter) BFaD() int64 { return f.c.FaD() }

// funnelTree is the paper's second new algorithm: the counter tree of
// SimpleTree with combining-funnel counters in the hottest (top) levels
// and funnel stacks as leaf bins.
type funnelTree[V any] struct {
	npri     int
	nleaves  int
	counters []treeCounter // 1-based
	bins     []*funnel.Stack[V]
}

// NewFunnelTree builds the funnel-tree queue.
func NewFunnelTree[V any](cfg Config) Queue[V] {
	params := funnelParamsFor(cfg)
	cutoff := cfg.FunnelCutoff
	if cutoff == 0 {
		cutoff = DefaultFunnelCutoff
	}
	nl := ceilPow2(cfg.Priorities)
	q := &funnelTree[V]{
		npri:     cfg.Priorities,
		nleaves:  nl,
		counters: make([]treeCounter, nl),
		bins:     make([]*funnel.Stack[V], nl),
	}
	for i := 1; i < nl; i++ {
		if treeLevel(i) < cutoff {
			q.counters[i] = funnelTreeCounter{c: funnel.NewCounter(params, 0, true, 0)}
		} else {
			q.counters[i] = &atomicCounter{}
		}
	}
	for i := 0; i < nl; i++ {
		q.bins[i] = newFunnelBin[V](params, cfg.FIFOBins)
	}
	return q
}

// treeLevel returns the level of heap-numbered node i (root = 0).
func treeLevel(i int) int {
	l := -1
	for i > 0 {
		i /= 2
		l++
	}
	return l
}

func (q *funnelTree[V]) NumPriorities() int { return q.npri }

func (q *funnelTree[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	q.bins[pri].Push(v)
	n := q.nleaves + pri
	for n > 1 {
		parent := n / 2
		if n == 2*parent {
			q.counters[parent].FaI()
		}
		n = parent
	}
}

func (q *funnelTree[V]) DeleteMin() (V, bool) {
	n := 1
	for n < q.nleaves {
		if q.counters[n].BFaD() > 0 {
			n = 2 * n
		} else {
			n = 2*n + 1
		}
	}
	return q.bins[n-q.nleaves].Pop()
}
