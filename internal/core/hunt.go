package core

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pq/internal/mcs"
)

// Node tags for the Hunt et al. heap. Values >= huntTagPid are goroutine
// operation ids + huntTagPid.
const (
	huntEmpty uint64 = iota
	huntAvail
	huntTagPid
)

type huntNode[V any] struct {
	mu  sync.Mutex
	tag uint64
	pri int
	val V
}

// hunt is the native port of the concurrent heap of Hunt, Michael,
// Parthasarathy and Scott: one small lock around the heap size, one lock
// and tag per node, bit-reversed insertion scatter, bottom-up insertions
// racing top-down deletions. See internal/simpq's Hunt for the documented
// protocol (this is the same algorithm on sync.Mutex and atomics),
// including the adoption simplification.
type hunt[V any] struct {
	npri  int
	lock  mcs.Lock // protects size
	size  uint64
	pages atomic.Pointer[[]*huntPage[V]]
	opID  atomic.Uint64
}

// huntPageBits fixes the node-page size; node addresses are stable
// because pages never move — growth only appends new pages to a copied
// page-pointer slice.
const huntPageBits = 8

type huntPage[V any] [1 << huntPageBits]huntNode[V]

// NewHunt builds the Hunt et al. heap queue.
func NewHunt[V any](cfg Config) Queue[V] {
	q := &hunt[V]{npri: cfg.Priorities}
	pages := []*huntPage[V]{new(huntPage[V])}
	q.pages.Store(&pages)
	return q
}

// node returns the stable storage for heap slot i.
func (q *hunt[V]) node(i uint64) *huntNode[V] {
	pages := *q.pages.Load()
	return &pages[i>>huntPageBits][i&(1<<huntPageBits-1)]
}

// slots reports the current capacity in heap slots.
func (q *hunt[V]) slots() uint64 {
	return uint64(len(*q.pages.Load())) << huntPageBits
}

func (q *hunt[V]) NumPriorities() int { return q.npri }

// bitRevPos maps insertion count k (1-based) to its heap slot with the
// offset bits within the level reversed.
func bitRevPos(k uint64) uint64 {
	l := uint(bits.Len64(k)) - 1
	offset := k - 1<<l
	return 1<<l + bits.Reverse64(offset)>>(64-l)
}

// grow ensures the paged node storage covers slot i. Called with the size
// lock held; existing pages never move, so node addresses stay valid for
// in-flight operations.
func (q *hunt[V]) grow(needSlot uint64) {
	cur := *q.pages.Load()
	need := int(needSlot>>huntPageBits) + 1
	if need <= len(cur) {
		return
	}
	bigger := make([]*huntPage[V], need)
	copy(bigger, cur)
	for i := len(cur); i < need; i++ {
		bigger[i] = new(huntPage[V])
	}
	q.pages.Store(&bigger)
}

func (q *hunt[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	mypid := q.opID.Add(1)<<8 | huntTagPid // unique per operation

	tok := q.lock.Acquire()
	i := q.placeLocked(pri, v, mypid)
	q.lock.Release(tok)
	q.bubbleUp(i, pri, mypid)
}

// placeLocked claims the next heap slot and writes the item into it under
// its node lock, tagged with mypid so the bubble-up can recognize it.
// Called with the size lock held; the item is fully placed (countable by
// deleters) when this returns, even though it has not bubbled yet.
func (q *hunt[V]) placeLocked(pri int, v V, mypid uint64) uint64 {
	q.size++
	i := bitRevPos(q.size)
	q.grow(i)
	ni := q.node(i)
	ni.mu.Lock()
	tag := mypid
	if i == 1 {
		tag = huntAvail
	}
	ni.pri, ni.val, ni.tag = pri, v, tag
	ni.mu.Unlock()
	return i
}

// bubbleUp floats the item tagged mypid from slot i toward the root,
// hand-over-hand with parent-then-child lock order.
func (q *hunt[V]) bubbleUp(i uint64, pri int, mypid uint64) {
	for i > 1 {
		parent := i / 2
		np, ni := q.node(parent), q.node(i)
		np.mu.Lock()
		ni.mu.Lock()
		if ni.tag != mypid {
			// A deletion adopted our item; it is placed.
			ni.mu.Unlock()
			np.mu.Unlock()
			return
		}
		switch pt := np.tag; {
		case pt == huntAvail:
			if ni.pri < np.pri {
				ni.tag, np.tag = np.tag, ni.tag
				ni.pri, np.pri = np.pri, ni.pri
				ni.val, np.val = np.val, ni.val
				ni.mu.Unlock()
				np.mu.Unlock()
				i = parent
			} else {
				ni.tag = huntAvail
				ni.mu.Unlock()
				np.mu.Unlock()
				return
			}
		case pt == huntEmpty:
			ni.tag = huntAvail
			ni.mu.Unlock()
			np.mu.Unlock()
			return
		default:
			// Parent mid-insertion by another operation: yield and retry.
			ni.mu.Unlock()
			np.mu.Unlock()
			runtime.Gosched()
		}
	}
	if i == 1 {
		n1 := q.node(1)
		n1.mu.Lock()
		if n1.tag == mypid {
			n1.tag = huntAvail
		}
		n1.mu.Unlock()
	}
}

func (q *hunt[V]) DeleteMin() (V, bool) {
	tok := q.lock.Acquire()
	_, v, ok := q.popUnlocking(func() { q.lock.Release(tok) })
	return v, ok
}

// popUnlocking removes the minimum, invoking release at the protocol's
// early-release point (once the root and last nodes are locked) so the
// sift-down runs without the size lock. Batch deletes pass a no-op and
// keep the size lock across pops, so each pop sees a fully settled root
// and the batch comes out in true min order at quiescence.
func (q *hunt[V]) popUnlocking(release func()) (int, V, bool) {
	var zero V
	if q.size == 0 {
		release()
		return 0, zero, false
	}
	n := q.size
	q.size--
	last := bitRevPos(n)
	n1 := q.node(1)
	n1.mu.Lock()
	if last == 1 {
		release()
		outP, out := n1.pri, n1.val
		n1.tag = huntEmpty
		n1.val = zero
		n1.mu.Unlock()
		return outP, out, true
	}
	nl := q.node(last)
	nl.mu.Lock()
	release()

	lp, lv := nl.pri, nl.val
	nl.tag = huntEmpty
	nl.val = zero
	nl.mu.Unlock()

	if n1.tag == huntEmpty {
		// The root's item is mid-flight in someone's bubble-up: adopt the
		// last item instead (the protocol's adoption simplification).
		n1.mu.Unlock()
		return lp, lv, true
	}
	outP, out := n1.pri, n1.val
	n1.pri, n1.val, n1.tag = lp, lv, huntAvail
	q.siftDown(n1)
	return outP, out, true
}

// siftDown restores heap order from the root, hand-over-hand with
// parent-then-child lock order; called with the root's lock held.
func (q *hunt[V]) siftDown(n1 *huntNode[V]) {
	i := uint64(1)
	cur := n1
	for {
		l, r := 2*i, 2*i+1
		if l >= q.slots() {
			break
		}
		nL := q.node(l)
		nL.mu.Lock()
		var nR *huntNode[V]
		if r < q.slots() {
			nR = q.node(r)
			nR.mu.Lock()
		}
		lt := nL.tag
		rt := huntEmpty
		if nR != nil {
			rt = nR.tag
		}
		if (lt != huntEmpty && lt != huntAvail) || (rt != huntEmpty && rt != huntAvail) {
			// Mid-insertion child: its bubble-up finishes the reordering.
			if nR != nil {
				nR.mu.Unlock()
			}
			nL.mu.Unlock()
			break
		}
		var child *huntNode[V]
		childIdx := uint64(0)
		cpri := 0
		if lt == huntAvail {
			child, childIdx, cpri = nL, l, nL.pri
		}
		if rt == huntAvail && (child == nil || nR.pri < cpri) {
			child, childIdx, cpri = nR, r, nR.pri
		}
		if child == nil || cpri >= cur.pri {
			if nR != nil {
				nR.mu.Unlock()
			}
			nL.mu.Unlock()
			break
		}
		cur.tag, child.tag = child.tag, cur.tag
		cur.pri, child.pri = child.pri, cur.pri
		cur.val, child.val = child.val, cur.val
		if nR != nil && child != nR {
			nR.mu.Unlock()
		}
		if child != nL {
			nL.mu.Unlock()
		}
		cur.mu.Unlock()
		i, cur = childIdx, child
	}
	cur.mu.Unlock()
}

// InsertBatch places the whole batch under one size-lock hold (sorted by
// priority, so earlier placements — which land at shallower or equal
// levels — never need to pass later ones), then runs the bubble-ups after
// releasing it, in placement order: each item's upward path holds only
// already-settled batch items, so the bubbles are the same races the
// single-item protocol already resolves.
func (q *hunt[V]) InsertBatch(items []Item[V]) {
	for _, it := range items {
		checkPri(it.Pri, q.npri)
	}
	if len(items) == 0 {
		return
	}
	sorted := make([]Item[V], len(items))
	copy(sorted, items)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Pri < sorted[b].Pri })

	pids := make([]uint64, len(sorted))
	slots := make([]uint64, len(sorted))
	tok := q.lock.Acquire()
	for j, it := range sorted {
		pids[j] = q.opID.Add(1)<<8 | huntTagPid
		slots[j] = q.placeLocked(it.Pri, it.Val, pids[j])
	}
	q.lock.Release(tok)
	for j, it := range sorted {
		q.bubbleUp(slots[j], it.Pri, pids[j])
	}
}

// DeleteMinBatch holds the size lock across up to k pops — sift-downs
// included — so within the batch every pop removes the true current
// minimum instead of racing the previous pop's sift.
func (q *hunt[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	out := make([]Item[V], 0, k)
	tok := q.lock.Acquire()
	for len(out) < k {
		pri, v, ok := q.popUnlocking(func() {})
		if !ok {
			break
		}
		out = append(out, Item[V]{Pri: pri, Val: v})
	}
	q.lock.Release(tok)
	return out
}
