package core

import (
	"sort"
	"sync/atomic"
)

// atomicCounter implements the paper's shared counter (fetch-and-increment
// and bounded fetch-and-decrement) on a hardware atomic word — the
// "execute these operations in hardware" option of Figure 1.
type atomicCounter struct {
	v atomic.Int64
}

func (c *atomicCounter) FaI() int64 { return c.v.Add(1) - 1 }

// BFaD returns the previous value, decrementing only if it exceeded the
// bound (zero).
func (c *atomicCounter) BFaD() int64 {
	for {
		old := c.v.Load()
		if old <= 0 {
			return old
		}
		if c.v.CompareAndSwap(old, old-1) {
			return old
		}
	}
}

// AddN is an n-unit fetch-and-increment: one RMW for the whole batch.
func (c *atomicCounter) AddN(n int64) int64 { return c.v.Add(n) - n }

// SubN is the n-unit bounded fetch-and-decrement: it subtracts
// min(n, prev) — never undershooting the zero bound — and returns prev,
// exactly as n sequential BFaD calls would net out.
func (c *atomicCounter) SubN(n int64) int64 {
	for {
		old := c.v.Load()
		take := n
		if take > old {
			take = old
		}
		if take <= 0 {
			return old
		}
		if c.v.CompareAndSwap(old, old-take) {
			return old
		}
	}
}

// simpleTree is Figure 3: a complete binary tree whose internal nodes
// count the items in their left subtrees; bins at the leaves. delete-min
// descends by bounded decrements; insert fills its bin and ascends,
// incrementing every counter reached from the left.
type simpleTree[V any] struct {
	npri     int
	nleaves  int
	counters []atomicCounter // 1-based
	bins     []binLike[V]
}

// NewSimpleTree builds the counter-tree queue.
func NewSimpleTree[V any](cfg Config) Queue[V] {
	nl := ceilPow2(cfg.Priorities)
	return &simpleTree[V]{
		npri:     cfg.Priorities,
		nleaves:  nl,
		counters: make([]atomicCounter, nl),
		bins:     newBins[V](nl, cfg.FIFOBins),
	}
}

func (q *simpleTree[V]) NumPriorities() int { return q.npri }

func (q *simpleTree[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	q.bins[pri].insert(v)
	n := q.nleaves + pri
	for n > 1 {
		parent := n / 2
		if n == 2*parent {
			q.counters[parent].FaI()
		}
		n = parent
	}
}

func (q *simpleTree[V]) DeleteMin() (V, bool) {
	n := 1
	for n < q.nleaves {
		if q.counters[n].BFaD() > 0 {
			n = 2 * n
		} else {
			n = 2*n + 1
		}
	}
	return q.bins[n-q.nleaves].delete()
}

// InsertBatch fills the bins first (counters must never promise items the
// bins do not yet hold), then applies the aggregated counter increments —
// one AddN per touched node instead of one FaI per item — children before
// parents (descending heap index), preserving the bottom-up order of the
// single-item insert for every item's path.
func (q *simpleTree[V]) InsertBatch(items []Item[V]) {
	runs := groupByPri(items, q.npri)
	if len(runs) == 0 {
		return
	}
	incs := make(map[int]int64)
	for _, run := range runs {
		q.bins[run.pri].insertN(run.vals)
		n := q.nleaves + run.pri
		for n > 1 {
			parent := n / 2
			if n == 2*parent {
				incs[parent] += int64(len(run.vals))
			}
			n = parent
		}
	}
	nodes := make([]int, 0, len(incs))
	for n := range incs {
		nodes = append(nodes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(nodes)))
	for _, n := range nodes {
		q.counters[n].AddN(incs[n])
	}
}

// DeleteMinBatch descends the tree once, reserving whole sub-batches with
// multi-unit bounded decrements instead of one BFaD per item.
func (q *simpleTree[V]) DeleteMinBatch(k int) []Item[V] {
	if k <= 0 {
		return nil
	}
	out := make([]Item[V], 0, k)
	q.takeBatch(1, k, &out)
	return out
}

// takeBatch pops up to want items from the subtree rooted at heap node n,
// appending to out and returning how many it got. At each internal node
// one SubN reserves min(want, counter) items from the left subtree — the
// counter never overcounts left-subtree items (bins fill before counters
// rise), so the reservation is sound — and the remainder is sought on the
// right best-effort, where deeper counters bound the claim, mirroring how
// sequential deletes walk right on a zero counter.
func (q *simpleTree[V]) takeBatch(n, want int, out *[]Item[V]) int {
	if want <= 0 {
		return 0
	}
	if n >= q.nleaves {
		pri := n - q.nleaves
		vals := q.bins[pri].deleteN(want)
		for _, v := range vals {
			*out = append(*out, Item[V]{Pri: pri, Val: v})
		}
		return len(vals)
	}
	left := int64(want)
	if prev := q.counters[n].SubN(left); prev < left {
		left = prev
	}
	got := 0
	if left > 0 {
		got = q.takeBatch(2*n, int(left), out)
	}
	if got < want {
		got += q.takeBatch(2*n+1, want-got, out)
	}
	return got
}
