package core

import "sync/atomic"

// atomicCounter implements the paper's shared counter (fetch-and-increment
// and bounded fetch-and-decrement) on a hardware atomic word — the
// "execute these operations in hardware" option of Figure 1.
type atomicCounter struct {
	v atomic.Int64
}

func (c *atomicCounter) FaI() int64 { return c.v.Add(1) - 1 }

// BFaD returns the previous value, decrementing only if it exceeded the
// bound (zero).
func (c *atomicCounter) BFaD() int64 {
	for {
		old := c.v.Load()
		if old <= 0 {
			return old
		}
		if c.v.CompareAndSwap(old, old-1) {
			return old
		}
	}
}

// simpleTree is Figure 3: a complete binary tree whose internal nodes
// count the items in their left subtrees; bins at the leaves. delete-min
// descends by bounded decrements; insert fills its bin and ascends,
// incrementing every counter reached from the left.
type simpleTree[V any] struct {
	npri     int
	nleaves  int
	counters []atomicCounter // 1-based
	bins     []binLike[V]
}

// NewSimpleTree builds the counter-tree queue.
func NewSimpleTree[V any](cfg Config) Queue[V] {
	nl := ceilPow2(cfg.Priorities)
	return &simpleTree[V]{
		npri:     cfg.Priorities,
		nleaves:  nl,
		counters: make([]atomicCounter, nl),
		bins:     newBins[V](nl, cfg.FIFOBins),
	}
}

func (q *simpleTree[V]) NumPriorities() int { return q.npri }

func (q *simpleTree[V]) Insert(pri int, v V) {
	checkPri(pri, q.npri)
	q.bins[pri].insert(v)
	n := q.nleaves + pri
	for n > 1 {
		parent := n / 2
		if n == 2*parent {
			q.counters[parent].FaI()
		}
		n = parent
	}
}

func (q *simpleTree[V]) DeleteMin() (V, bool) {
	n := 1
	for n < q.nleaves {
		if q.counters[n].BFaD() > 0 {
			n = 2 * n
		} else {
			n = 2*n + 1
		}
	}
	return q.bins[n-q.nleaves].delete()
}
