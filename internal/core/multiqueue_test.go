package core

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"pq/internal/order"
)

// recordMultiQueue runs procs goroutines of mixed operations against a
// MultiQueue and returns the timestamped history. Timestamps come from
// one atomic counter, a valid monotonic source across goroutines.
func recordMultiQueue(t *testing.T, cfg Config, procs, opsPerProc int) ([]order.Op, RelaxStats) {
	t.Helper()
	q, err := New[uint64](MultiQueue, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Int64
	var mu sync.Mutex
	var history []order.Op
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), uint64(opsPerProc)))
			local := make([]order.Op, 0, opsPerProc)
			for i := 0; i < opsPerProc; i++ {
				if i%2 == 0 || i < 4 {
					pri := rng.IntN(cfg.Priorities)
					val := uint64(g)<<32 | uint64(i)
					start := clock.Add(1)
					q.Insert(pri, val)
					end := clock.Add(1)
					local = append(local, order.Op{
						Kind: order.Insert, Pri: pri, Val: val, OK: true, Start: start, End: end,
					})
				} else {
					start := clock.Add(1)
					val, ok := q.DeleteMin()
					end := clock.Add(1)
					op := order.Op{Kind: order.DeleteMin, OK: ok, Start: start, End: end}
					if ok {
						op.Val = val
						op.Pri = -1 // recovered from the matching insert below
					}
					local = append(local, op)
				}
			}
			mu.Lock()
			history = append(history, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	// Recover each pop's priority from its insert (values are unique).
	pri := make(map[uint64]int, len(history))
	for _, op := range history {
		if op.Kind == order.Insert {
			pri[op.Val] = op.Pri
		}
	}
	for i := range history {
		if history[i].Kind == order.DeleteMin && history[i].OK {
			p, ok := pri[history[i].Val]
			if !ok {
				t.Fatalf("pop returned never-inserted value %#x", history[i].Val)
			}
			history[i].Pri = p
		}
	}
	return history, q.(RelaxedQueue).RelaxStats()
}

// TestMultiQueueRelaxedChecker runs MultiQueue concurrently across its
// knob space and requires the relaxed order checker to pass every run —
// the acceptance gate of the relaxed contract. The rank budget handed to
// the checker is the generous whp bound; uniqueness, precedence and
// emptiness have no budget at all.
func TestMultiQueueRelaxedChecker(t *testing.T) {
	const procs, ops = 8, 400
	for _, cfg := range []Config{
		{Priorities: 64, Concurrency: procs},
		{Priorities: 64, Concurrency: procs, MultiQueueC: 4},
		{Priorities: 16, Concurrency: procs, MultiQueueC: 2, MultiQueueSticky: 8},
		{Priorities: 64, Concurrency: procs, MultiQueueC: 2, MultiQueuePopBatch: 4},
		{Priorities: 64, Concurrency: procs, MultiQueueC: 2, MultiQueueSticky: 4, MultiQueuePopBatch: 4, FIFOBins: true},
	} {
		history, _ := recordMultiQueue(t, cfg, procs, ops)
		c := cfg.MultiQueueC
		if c == 0 {
			c = 2
		}
		nq := ceilPow2(c * procs)
		budget := 64 * nq // far above the O(nq·log) whp rank bound
		if vs := order.CheckRelaxed(history, order.RelaxedBound{MaxRank: budget}); len(vs) != 0 {
			t.Fatalf("cfg %+v: relaxed checker: %d violations, first: %v", cfg, len(vs), vs[0])
		}
	}
}

// TestMultiQueueStrictCheckerRejects is the must-fail direction: the
// strict checker has to keep rejecting relaxed output. Even run
// sequentially, a MultiQueue spreads items over nq sub-heaps and pops
// from the better of two random ones, so with hundreds of scattered
// items the chance that every pop happens to be the true minimum is
// astronomically small; a handful of attempts makes the test
// deterministic in practice while the same histories satisfy the
// relaxed checker.
func TestMultiQueueStrictCheckerRejects(t *testing.T) {
	const npri = 64
	for attempt := 0; attempt < 8; attempt++ {
		q, err := New[uint64](MultiQueue, Config{Priorities: npri, Concurrency: 8})
		if err != nil {
			t.Fatal(err)
		}
		var history []order.Op
		ts := int64(0)
		rng := rand.New(rand.NewPCG(uint64(attempt), 99))
		record := func(kind order.Kind, pri int, val uint64, ok bool) {
			history = append(history, order.Op{
				Kind: kind, Pri: pri, Val: val, OK: ok, Start: ts, End: ts + 1,
			})
			ts += 2
		}
		val := uint64(0)
		pris := make(map[uint64]int)
		insert := func() {
			pri := rng.IntN(npri)
			val++
			pris[val] = pri
			q.Insert(pri, val)
			record(order.Insert, pri, val, true)
		}
		remove := func() {
			v, ok := q.DeleteMin()
			record(order.DeleteMin, pris[v], v, ok)
		}
		for i := 0; i < 200; i++ {
			insert()
		}
		for i := 0; i < 400; i++ {
			if i%2 == 0 {
				insert()
			} else {
				remove()
			}
		}
		for i := 0; i < 250; i++ {
			remove()
		}
		strict := order.Check(history)
		if len(strict) == 0 {
			continue // freak all-minimum run; try again
		}
		for _, v := range strict {
			if v.Rule != "priority" {
				t.Fatalf("strict checker found a non-priority violation in a sequential run: %v", v)
			}
		}
		// The identical history is fine under the relaxed contract.
		if vs := order.CheckRelaxed(history, order.RelaxedBound{MaxRank: 4096}); len(vs) != 0 {
			t.Fatalf("relaxed checker rejected a sequential MultiQueue history: %v", vs[0])
		}
		return
	}
	t.Fatal("strict checker accepted 8 consecutive MultiQueue histories — relaxation is not observable")
}

// TestMultiQueueRankStatistical checks the Williams & Sanders quality
// claim empirically for c in {2,4}: mean rank error stays O(c·p) and the
// p99 within the exponential-tail envelope. The slack factors keep the
// test deterministic-in-practice across schedulers while still
// distinguishing a real MultiQueue from, say, a random-queue pop
// (whose rank error grows with the queue size, not with c·p).
func TestMultiQueueRankStatistical(t *testing.T) {
	const procs, ops, npri = 8, 2000, 256
	for _, c := range []int{2, 4} {
		cfg := Config{Priorities: npri, Concurrency: procs, MultiQueueC: c}
		_, rs := recordMultiQueue(t, cfg, procs, ops)
		if !rs.Tracked || rs.Pops == 0 {
			t.Fatalf("c=%d: no rank accounting (%+v)", c, rs)
		}
		m := float64(ceilPow2(c * procs))
		mean := rs.Mean()
		if limit := 3*m + 16; mean > limit {
			t.Errorf("c=%d: mean rank error %.1f exceeds %.1f (m=%v)", c, mean, limit, m)
		}
		p99 := rs.Quantile(0.99)
		if limit := m * (math.Log2(float64(rs.Pops)) + 8); p99 > limit {
			t.Errorf("c=%d: p99 rank error %.0f exceeds %.0f (m=%v, pops=%d)", c, p99, limit, m, rs.Pops)
		}
	}
}

// TestMultiQueueDrainConservation fills a buffered, sticky MultiQueue
// from many goroutines and drains it: every item must come back exactly
// once — including items parked in per-goroutine deletion buffers, which
// the emptiness scan must find.
func TestMultiQueueDrainConservation(t *testing.T) {
	const procs, per, npri = 8, 500, 32
	q, err := New[uint64](MultiQueue, Config{
		Priorities: npri, Concurrency: procs, MultiQueueSticky: 8, MultiQueuePopBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Insert((g+i)%npri, uint64(g)<<32|uint64(i))
				if i%3 == 2 {
					// Park pops in this goroutine's deletion buffer, then
					// reinsert what it delivered to keep the count stable.
					if v, ok := q.DeleteMin(); ok {
						q.Insert(int(v>>32+v)%npri, uint64(procs+g)<<32|uint64(i))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Count live items: inserts minus delivered pops is unknowable here,
	// so just drain and verify uniqueness plus a clean empty report.
	seen := make(map[uint64]bool)
	bq := q.(BatchQueue[uint64])
	total := 0
	for {
		got := bq.DeleteMinBatch(64)
		if len(got) == 0 {
			break
		}
		for _, it := range got {
			if seen[it.Val] {
				t.Fatalf("value %#x drained twice", it.Val)
			}
			seen[it.Val] = true
		}
		total += len(got)
	}
	if v, ok := q.DeleteMin(); ok {
		t.Fatalf("DeleteMin found %#x after a clean drain", v)
	}
	if total == 0 {
		t.Fatal("drain found nothing")
	}
}

// TestMultiQueueRelaxStats sanity-checks the RelaxStats arithmetic.
func TestMultiQueueRelaxStats(t *testing.T) {
	s := RelaxStats{Pops: 4, RankSum: 6, RankMax: 3, Counts: make([]int64, 10), Tracked: true}
	s.Counts[0] = 1
	s.Counts[1] = 2
	s.Counts[3] = 1
	if got := s.Mean(); got != 1.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if got := s.Quantile(1); got != 3 {
		t.Fatalf("Quantile(1) = %v", got)
	}
	m := s.Merge(s)
	if m.Pops != 8 || m.RankSum != 12 || m.RankMax != 3 || m.Counts[1] != 4 {
		t.Fatalf("Merge = %+v", m)
	}
	var un RelaxStats
	if got := un.Merge(s); got.Pops != 4 || !got.Tracked {
		t.Fatalf("Merge from untracked = %+v", got)
	}
}

// TestParseAlgorithm pins the registry split: the strict seven stay in
// Algorithms, MultiQueue is relaxed-only, and parsing is
// case-insensitive over All().
func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms {
		if IsRelaxed(a) {
			t.Fatalf("%s must not be relaxed", a)
		}
	}
	if !IsRelaxed(MultiQueue) {
		t.Fatal("MultiQueue must be relaxed")
	}
	for _, a := range Algorithms {
		if a == MultiQueue {
			t.Fatal("MultiQueue must not be in the strict Algorithms list")
		}
	}
	if got := All(); got[len(got)-1] != MultiQueue || len(got) != len(Algorithms)+1 {
		t.Fatalf("All() = %v", got)
	}
	for _, s := range []string{"multiqueue", "MultiQueue", "MULTIQUEUE"} {
		if a, ok := ParseAlgorithm(s); !ok || a != MultiQueue {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", s, a, ok)
		}
	}
	if a, ok := ParseAlgorithm("funneltree"); !ok || a != FunnelTree {
		t.Fatalf("ParseAlgorithm(funneltree) = %v, %v", a, ok)
	}
	if _, ok := ParseAlgorithm("nope"); ok {
		t.Fatal("ParseAlgorithm accepted a bogus name")
	}
}
