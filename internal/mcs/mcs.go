// Package mcs implements the queue-based spin lock of Mellor-Crummey and
// Scott (ACM TOCS 1991), the lock the paper uses for its bins and heaps.
// Each waiter spins on its own queue node, so waiting causes no traffic on
// the lock word and release hands off in FIFO order with one store.
//
// In Go the "processor-local spinning" of the original becomes spinning
// with runtime.Gosched, which keeps waiters from monopolizing Ps when
// goroutines outnumber cores.
package mcs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Lock is an MCS queue lock. The zero value is unlocked and ready to use.
// Acquire returns a token that must be passed to the matching Release.
type Lock struct {
	tail atomic.Pointer[qnode]
}

type qnode struct {
	next   atomic.Pointer[qnode]
	locked atomic.Bool
}

var qnodePool = sync.Pool{New: func() any { return new(qnode) }}

// Acquire takes the lock, blocking until it is available, and returns the
// queue-node token for Release.
func (l *Lock) Acquire() *qnode {
	n := qnodePool.Get().(*qnode)
	n.next.Store(nil)
	n.locked.Store(false)
	pred := l.tail.Swap(n)
	if pred != nil {
		n.locked.Store(true)
		pred.next.Store(n)
		for n.locked.Load() {
			runtime.Gosched()
		}
	}
	return n
}

// Release hands the lock to the next waiter, if any, and recycles the
// token. The token must be the one returned by the matching Acquire.
func (l *Lock) Release(n *qnode) {
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			qnodePool.Put(n)
			return
		}
		// A successor is mid-link; wait for it to appear.
		for next == nil {
			runtime.Gosched()
			next = n.next.Load()
		}
	}
	next.locked.Store(false)
	qnodePool.Put(n)
}

// Do runs f while holding the lock.
func (l *Lock) Do(f func()) {
	n := l.Acquire()
	f()
	l.Release(n)
}
