package mcs

import (
	"sync"
	"testing"
)

func TestLockMutualExclusion(t *testing.T) {
	const goroutines = 8
	const iters = 2000
	var (
		l       Lock
		counter int
		wg      sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := l.Acquire()
				counter++ // unsynchronized on purpose; the lock must protect it
				l.Release(n)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestLockDo(t *testing.T) {
	var (
		l Lock
		x int
	)
	l.Do(func() { x = 42 })
	if x != 42 {
		t.Fatalf("Do did not run the critical section")
	}
}

func TestLockSequentialReuse(t *testing.T) {
	var l Lock
	for i := 0; i < 100; i++ {
		n := l.Acquire()
		l.Release(n)
	}
}

func TestLockHandoffUnderContention(t *testing.T) {
	// Many goroutines hammer the lock; every one must eventually acquire.
	const goroutines = 32
	var (
		l    Lock
		wg   sync.WaitGroup
		seen = make([]bool, goroutines)
	)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := l.Acquire()
			seen[g] = true
			l.Release(n)
		}()
	}
	wg.Wait()
	for g, ok := range seen {
		if !ok {
			t.Fatalf("goroutine %d never acquired the lock", g)
		}
	}
}
