package pq_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"pq"
	"pq/internal/harness"
)

// Benchmarks come in two families:
//
//   - BenchmarkFig* / BenchmarkAblate*: regenerate the paper's figures
//     and tables on the deterministic simulator at a reduced scale and
//     report mean simulated cycles per queue access. Full-scale runs:
//     cmd/pqbench. One benchmark iteration = one full experiment sweep.
//
//   - BenchmarkNative*: measure the native goroutine implementations on
//     the host (ns/op of the paper's mixed workload).

const benchScale = 0.2

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pts, err := exp.Run(benchScale, func(string) {})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the headline series: mean latency of each algorithm's
			// largest configuration in the sweep.
			last := map[string]float64{}
			for _, p := range pts {
				last[p.Algorithm] = p.Result.MeanAll
			}
			for alg, v := range last {
				unit := "cycles/" + strings.ReplaceAll(alg, " ", "-")
				b.ReportMetric(v, unit)
			}
		}
	}
}

func BenchmarkFig5Left(b *testing.B)  { benchExperiment(b, "fig5l") }
func BenchmarkFig5Right(b *testing.B) { benchExperiment(b, "fig5r") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9") }

func BenchmarkAblateCutoff(b *testing.B)   { benchExperiment(b, "ablate-cutoff") }
func BenchmarkAblateAdaption(b *testing.B) { benchExperiment(b, "ablate-adaption") }
func BenchmarkFairness(b *testing.B)       { benchExperiment(b, "fairness") }
func BenchmarkStragglers(b *testing.B)     { benchExperiment(b, "stragglers") }
func BenchmarkSteadyState(b *testing.B)    { benchExperiment(b, "steadystate") }
func BenchmarkSensitivity(b *testing.B)    { benchExperiment(b, "sensitivity") }

// BenchmarkNativeMixed drives the paper's 50/50 workload on the native
// queues with one goroutine per benchmark P (b.RunParallel).
func BenchmarkNativeMixed(b *testing.B) {
	for _, alg := range pq.Algorithms() {
		for _, npri := range []int{16, 128} {
			b.Run(fmt.Sprintf("%s/pris=%d", alg, npri), func(b *testing.B) {
				q, err := pq.New[int](alg, npri)
				if err != nil {
					b.Fatal(err)
				}
				b.RunParallel(func(p *testing.PB) {
					i := 0
					for p.Next() {
						if i%2 == 0 {
							q.Insert((i*13)%npri, i)
						} else {
							q.DeleteMin()
						}
						i++
					}
				})
			})
		}
	}
}

// BenchmarkNativeInsert measures pure insertion throughput.
func BenchmarkNativeInsert(b *testing.B) {
	for _, alg := range pq.Algorithms() {
		b.Run(string(alg), func(b *testing.B) {
			q, err := pq.New[int](alg, 16)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(p *testing.PB) {
				i := 0
				for p.Next() {
					q.Insert(i%16, i)
					i++
				}
			})
		})
	}
}

// BenchmarkNativeCounter compares the funnel counter against a plain
// atomic under contention — the native analogue of Figure 5's question.
func BenchmarkNativeCounter(b *testing.B) {
	b.Run("funnel-bounded", func(b *testing.B) {
		c := pq.NewCounter(1<<40, true, 0)
		b.RunParallel(func(p *testing.PB) {
			i := 0
			for p.Next() {
				if i%2 == 0 {
					c.FaI()
				} else {
					c.FaD()
				}
				i++
			}
		})
	})
	b.Run("funnel-unbounded", func(b *testing.B) {
		c := pq.NewCounter(0, false, 0)
		b.RunParallel(func(p *testing.PB) {
			i := 0
			for p.Next() {
				if i%2 == 0 {
					c.FaI()
				} else {
					c.FaD()
				}
				i++
			}
		})
	})
}

// BenchmarkNativeStack exercises the funnel stack against a mutex slice
// stack baseline.
func BenchmarkNativeStack(b *testing.B) {
	b.Run("funnel", func(b *testing.B) {
		s := pq.NewStack[int]()
		b.RunParallel(func(p *testing.PB) {
			i := 0
			for p.Next() {
				if i%2 == 0 {
					s.Push(i)
				} else {
					s.Pop()
				}
				i++
			}
		})
	})
	b.Run("mutex", func(b *testing.B) {
		var (
			mu    sync.Mutex
			items []int
		)
		b.RunParallel(func(p *testing.PB) {
			i := 0
			for p.Next() {
				mu.Lock()
				if i%2 == 0 {
					items = append(items, i)
				} else if n := len(items); n > 0 {
					items = items[:n-1]
				}
				mu.Unlock()
				i++
			}
		})
	})
}
