# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-json bench-relaxed bench-serve figures repro repro-quick chaos-quick examples vet fmt lint pqd pqload loadtest-quick loadtest-durable loadtest-obs admin-smoke cluster-smoke

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# vet plus staticcheck when the host has it (CI installs it; locally
# it is optional).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, ran go vet only"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper at full scale.
repro:
	$(GO) run ./cmd/pqbench -experiment all

# Same, at a quarter of the per-processor operation count (~seconds).
repro-quick:
	$(GO) run ./cmd/pqbench -experiment all -scale 0.25

# Machine-readable benchmark suite: the standard workload for every
# algorithm with latency quantiles, internals metrics and sim totals.
bench-json:
	$(GO) run ./cmd/pqbench -json BENCH_$$(date +%Y-%m-%d).json -metrics

# Serving hot-path gate: BenchmarkServeLoopback must report zero
# allocs/op on the steady-state path and hold throughput within 10% of
# scripts/bench_serve_baseline.json.
bench-serve:
	GO="$(GO)" sh ./scripts/bench_serve.sh

# Relaxed frontier: MultiQueue throughput vs measured rank error over
# c and processor count, with FunnelTree as the exact baseline. The
# full-scale table lands in EXPERIMENTS.md; SCALE=0.25 for a quick run.
bench-relaxed:
	GO="$(GO)" sh ./scripts/bench_relaxed.sh

# Every figure plus the internals metrics report and latency histograms.
figures:
	$(GO) run ./cmd/pqbench -experiment all -scale 0.25 -plot
	$(GO) run ./cmd/pqbench -metrics -plot -scale 0.25

# Fault-injection matrix: every algorithm under stalls, module
# degradation and crash-stop, with history checking (~seconds).
chaos-quick:
	$(GO) run ./cmd/pqbench -chaos -scale 0.25

# The serving subsystem: the pqd daemon and its load generator.
pqd:
	$(GO) build -o bin/pqd ./cmd/pqd

pqload:
	$(GO) build -o bin/pqload ./cmd/pqload

# Loopback service smoke: pqd serving a sharded FunnelTree under
# pqload for 2s — clean drain, valid pq-bench/v1 JSON, observable
# admission-control shedding, graceful SIGTERM exit (~seconds).
loadtest-quick:
	GO="$(GO)" sh ./scripts/loadtest_quick.sh

# Durable vs in-memory comparison: the same pqload workload against an
# in-memory pqd and a WAL-backed one (-fsync interval), merged into one
# bench file; fails if durable throughput falls below half of memory.
loadtest-durable:
	GO="$(GO)" sh ./scripts/loadtest_durable.sh

# Metrics overhead: the same workload with recording on and off; fails
# if the metrics-on run lost more than MAX_LOSS throughput.
loadtest-obs:
	GO="$(GO)" sh ./scripts/loadtest_obs.sh

# Admin endpoint smoke: boot pqd with -admin-addr, probe the health
# endpoints, and assert every required /metrics family is present.
admin-smoke:
	GO="$(GO)" sh ./scripts/admin_smoke.sh

# Cluster smoke: three pqd nodes sharing one cluster map under
# cluster-routed pqload — zero lost/duplicated items cluster-wide,
# valid per-node + aggregate pq-bench/v1 JSON, clean SIGTERM exits.
cluster-smoke:
	GO="$(GO)" sh ./scripts/cluster_smoke.sh

# Cluster scaling curve: the same insert burst against 1-, 2- and
# 3-node clusters of capacity-bounded nodes; fails unless the
# aggregate burst goodput increases monotonically with node count.
cluster-scaling:
	GO="$(GO)" sh ./scripts/cluster_scaling.sh

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scheduler
	$(GO) run ./examples/router
	$(GO) run ./examples/paperfig
	$(GO) run ./examples/hotspots
